// Tests for the execution engine: caching executor vs naive baseline, full
// executor modes, per-network and global limits, thread pool, stats.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "datagen/tpch_gen.h"
#include "engine/thread_pool.h"
#include "engine/xkeyword.h"
#include "test_util.h"

namespace xk::engine {
namespace {

using present::Mtton;
using testing::RunAll;
using testing::RunMode;
using testing::RunNaive;
using testing::RunTopK;

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

class EngineTest : public ::testing::Test {
 protected:
  // The loaded database is immutable across tests; build it once.
  static void SetUpTestSuite() {
    datagen::TpchConfig config;
    config.num_persons = 30;
    config.num_parts = 40;
    config.num_products = 20;
    config.seed = 77;
    db_ = datagen::TpchDatabase::Generate(config).MoveValueUnsafe().release();
    xk_ = XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe()
              .release();
    ASSERT_TRUE(xk_->AddDecomposition(
                       decomp::MakeMinimal(
                           db_->tss(), decomp::PhysicalDesign::kClusterPerDirection))
                    .ok());
    ASSERT_TRUE(xk_->AddDecomposition(
                       decomp::MakeMinimal(db_->tss(),
                                           decomp::PhysicalDesign::kHashIndexPerColumn))
                    .ok());
    ASSERT_TRUE(xk_->AddDecomposition(
                       decomp::MakeMinimal(db_->tss(), decomp::PhysicalDesign::kNone,
                                           /*use_indexes_at_runtime=*/false))
                    .ok());
    ASSERT_TRUE(
        xk_->AddDecomposition(decomp::MakeXKeyword(db_->tss(), 2, 6).MoveValueUnsafe())
            .ok());
  }

  static void TearDownTestSuite() {
    delete xk_;
    xk_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  std::multiset<std::vector<storage::ObjectId>> Shapes(
      const std::vector<Mtton>& results) {
    std::multiset<std::vector<storage::ObjectId>> out;
    for (const Mtton& m : results) {
      std::vector<storage::ObjectId> key = m.objects;
      key.push_back(m.ctssn_index);
      key.push_back(m.score);
      std::sort(key.begin(), key.end() - 2);
      out.insert(std::move(key));
    }
    return out;
  }

  static datagen::TpchDatabase* db_;
  static XKeyword* xk_;
};

datagen::TpchDatabase* EngineTest::db_ = nullptr;
XKeyword* EngineTest::xk_ = nullptr;

TEST_F(EngineTest, CachedEqualsNaiveAcrossQueries) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 100000;
  options.num_threads = 1;
  const std::vector<std::vector<std::string>> queries = {
      {"john", "tv"}, {"vcr", "dvd"}, {"mike", "radio"}, {"us", "tv"}};
  for (const auto& q : queries) {
    ExecutionStats cached_stats;
    ExecutionStats naive_stats;
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> cached,
                            RunTopK(*xk_, q, "MinClust", options, &cached_stats));
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> naive,
                            RunNaive(*xk_, q, "MinClust", options, &naive_stats));
    EXPECT_EQ(cached, naive) << q[0] << "," << q[1];
    // The cache trades probes for hits.
    if (cached_stats.cache_hits > 0) {
      EXPECT_LE(cached_stats.probes.probes, naive_stats.probes.probes);
    }
  }
}

TEST_F(EngineTest, AllDecompositionsProduceSameResults) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 100000;
  options.num_threads = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> a,
                          RunTopK(*xk_, {"john", "tv"}, "MinClust", options));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> b,
                          RunTopK(*xk_, {"john", "tv"}, "MinNClustIndx", options));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> c,
                          RunTopK(*xk_, {"john", "tv"}, "MinNClustNIndx", options));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> d,
                          RunTopK(*xk_, {"john", "tv"}, "XKeyword", options));
  EXPECT_EQ(Shapes(a), Shapes(b));
  EXPECT_EQ(Shapes(a), Shapes(c));
  // XKeyword uses different (wider) relations, so plan indexes match but
  // object multisets must agree.
  EXPECT_EQ(Shapes(a), Shapes(d));
}

TEST_F(EngineTest, FullExecutorModesAgree) {
  QueryOptions hash;
  hash.max_size_z = 6;
  hash.full_mode = FullMode::kHashJoin;
  QueryOptions inlj = hash;
  inlj.full_mode = FullMode::kIndexNestedLoop;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> h,
                          RunAll(*xk_, {"vcr", "dvd"}, "MinClust", hash));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> n,
                          RunAll(*xk_, {"vcr", "dvd"}, "MinClust", inlj));
  EXPECT_EQ(Shapes(h), Shapes(n));
}

TEST_F(EngineTest, ReuseReducesWork) {
  QueryOptions with;
  with.max_size_z = 6;
  with.full_mode = FullMode::kHashJoin;
  with.enable_scan_reuse = true;
  QueryOptions without = with;
  without.enable_scan_reuse = false;
  ExecutionStats with_stats, without_stats;
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<Mtton> a,
      RunAll(*xk_, {"john", "tv"}, "MinClust", with, &with_stats));
  XK_ASSERT_OK_AND_ASSIGN(
      std::vector<Mtton> b,
      RunAll(*xk_, {"john", "tv"}, "MinClust", without, &without_stats));
  EXPECT_EQ(Shapes(a), Shapes(b));
  EXPECT_GT(with_stats.reuse_hits, 0u);
  EXPECT_LT(with_stats.probes.probes, without_stats.probes.probes);
}

TEST_F(EngineTest, PerNetworkKLimitsEachNetwork) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 2;
  options.num_threads = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          RunTopK(*xk_, {"tv", "vcr"}, "MinClust", options));
  std::map<int, int> per_network;
  for (const Mtton& m : results) ++per_network[m.ctssn_index];
  for (const auto& [net, count] : per_network) {
    EXPECT_LE(count, 2) << "network " << net;
  }
}

TEST_F(EngineTest, GlobalKCapsTotal) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 100000;
  options.global_k = 5;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          RunTopK(*xk_, {"tv", "vcr"}, "MinClust", options));
  EXPECT_LE(results.size(), 5u);
}

TEST_F(EngineTest, MultiThreadedMatchesSingleThreaded) {
  QueryOptions single;
  single.max_size_z = 6;
  single.per_network_k = 100000;
  single.num_threads = 1;
  QueryOptions multi = single;
  multi.num_threads = 4;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> a,
                          RunTopK(*xk_, {"vcr", "tv"}, "MinClust", single));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> b,
                          RunTopK(*xk_, {"vcr", "tv"}, "MinClust", multi));
  EXPECT_EQ(Shapes(a), Shapes(b));
}

TEST_F(EngineTest, ResultsContainAllKeywordsSomewhere) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 1000;
  options.num_threads = 1;
  XK_ASSERT_OK_AND_ASSIGN(PreparedQuery q,
                          xk_->Prepare({"john", "tv"}, "MinClust", options));
  TopKExecutor executor;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results, executor.Run(q, options));
  for (const Mtton& m : results) {
    const cn::Ctssn& c = q.ctssns[static_cast<size_t>(m.ctssn_index)];
    // Every keyword-annotated occurrence's object is in that keyword's
    // containing list for the right schema node.
    for (int v = 0; v < c.num_nodes(); ++v) {
      for (const cn::CtssnKeyword& kw : c.node_keywords[static_cast<size_t>(v)]) {
        bool found = false;
        for (const keyword::Posting& p : xk_->master_index().ContainingList(
                 q.keywords[static_cast<size_t>(kw.keyword)])) {
          if (p.to_id == m.objects[static_cast<size_t>(v)] &&
              p.schema_node == kw.schema_node) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
}

TEST_F(EngineTest, ResultsAreRealTreesInTheTargetObjectGraph) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 500;
  options.num_threads = 1;
  XK_ASSERT_OK_AND_ASSIGN(PreparedQuery q,
                          xk_->Prepare({"vcr", "dvd"}, "MinClust", options));
  TopKExecutor executor;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results, executor.Run(q, options));
  ASSERT_FALSE(results.empty());
  for (const Mtton& m : results) {
    const cn::Ctssn& c = q.ctssns[static_cast<size_t>(m.ctssn_index)];
    for (const schema::TssTreeEdge& e : c.tree.edges) {
      storage::ObjectId from = m.objects[static_cast<size_t>(e.from)];
      storage::ObjectId to = m.objects[static_cast<size_t>(e.to)];
      const std::vector<storage::ObjectId>& fwd =
          xk_->objects().Forward(from, e.tss_edge);
      EXPECT_NE(std::find(fwd.begin(), fwd.end(), to), fwd.end())
          << "edge instance missing in target object graph";
    }
    // Distinctness within same-segment occurrences.
    for (int a = 0; a < c.num_nodes(); ++a) {
      for (int b = a + 1; b < c.num_nodes(); ++b) {
        if (c.tree.nodes[static_cast<size_t>(a)] ==
            c.tree.nodes[static_cast<size_t>(b)]) {
          EXPECT_NE(m.objects[static_cast<size_t>(a)],
                    m.objects[static_cast<size_t>(b)]);
        }
      }
    }
  }
}

TEST_F(EngineTest, UnknownDecompositionRejected) {
  QueryOptions options;
  EXPECT_TRUE(RunTopK(*xk_, {"a"}, "nosuch", options).status().IsNotFound());
  EXPECT_TRUE(xk_->Prepare({}, "MinClust", options).status().IsInvalidArgument());
}

TEST_F(EngineTest, AddDecompositionTwiceRejected) {
  EXPECT_TRUE(xk_->AddDecomposition(decomp::MakeMinimal(
                      db_->tss(), decomp::PhysicalDesign::kClusterPerDirection))
                  .IsAlreadyExists());
}

// An unbounded query (no deadline, no cost budget) must come back complete
// in every mode: full coverage and kComplete — the contract the answer cache
// and the migration of the retired per-mode wrappers both rely on.
TEST_F(EngineTest, RunReportsCompleteForUnboundedQueries) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 100000;
  options.num_threads = 1;
  const std::vector<std::string> keywords = {"john", "tv"};

  QueryRequest request;
  request.keywords = keywords;
  request.decomposition = "MinClust";
  request.options = options;

  for (QueryMode mode : {QueryMode::kTopK, QueryMode::kNaive, QueryMode::kAll}) {
    request.mode = mode;
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, xk_->Run(request));
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.completeness, Completeness::kComplete);
    EXPECT_TRUE(response.coverage.complete());
    EXPECT_EQ(response.coverage.cns_skipped, 0u);
    EXPECT_GT(response.coverage.cns_executed, 0u);
    EXPECT_GE(response.coverage.exhausted_class, 1);
    // The helper wrapper must be a faithful view of the same response.
    XK_ASSERT_OK_AND_ASSIGN(
        std::vector<Mtton> via_helper,
        RunMode(*xk_, mode, keywords, "MinClust", options));
    EXPECT_EQ(response.mttons, via_helper);
  }
}

// Prepare (and thus every entry point above it) rejects malformed options
// before touching the master index or the optimizer.
TEST_F(EngineTest, PrepareValidatesQueryOptions) {
  QueryOptions options;
  options.per_network_k = 0;
  EXPECT_TRUE(
      xk_->Prepare({"john"}, "MinClust", options).status().IsInvalidArgument());
  options = QueryOptions();
  options.morsel_size = 0;
  EXPECT_TRUE(
      xk_->Prepare({"john"}, "MinClust", options).status().IsInvalidArgument());
  options = QueryOptions();
  options.num_threads = -1;
  EXPECT_TRUE(
      xk_->Prepare({"john"}, "MinClust", options).status().IsInvalidArgument());
  options = QueryOptions();
  options.intra_plan_threads = -3;
  EXPECT_TRUE(
      RunTopK(*xk_, {"john"}, "MinClust", options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace xk::engine
