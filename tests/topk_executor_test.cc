// Tests for the morsel-driven intra-plan path and semi-join pruning of the
// top-k executor: byte-identical results vs the serial path across early-stop
// settings, pruning that never changes results while skipping probe work, and
// stats coverage of single-object plans.

#include <gtest/gtest.h>

#include "common/simd.h"
#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"
#include "test_util.h"

namespace xk::engine {
namespace {

using present::Mtton;
using testing::RunAll;
using testing::RunTopK;

class TopKExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DblpConfig config;  // the defaults: small DBLP sample
    config.seed = 2003;
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe().release();
    xk_ = XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe()
              .release();
    ASSERT_TRUE(xk_->AddDecomposition(
                       decomp::MakeMinimal(
                           db_->tss(), decomp::PhysicalDesign::kClusterPerDirection))
                    .ok());
    ASSERT_TRUE(
        xk_->AddDecomposition(decomp::MakeXKeyword(db_->tss(), 2, 6).MoveValueUnsafe())
            .ok());
  }

  static void TearDownTestSuite() {
    delete xk_;
    xk_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static datagen::DblpDatabase* db_;
  static XKeyword* xk_;
};

datagen::DblpDatabase* TopKExecutorTest::db_ = nullptr;
XKeyword* TopKExecutorTest::xk_ = nullptr;

// The morsel-driven path must reproduce the serial result list byte for byte
// — same Mttons, same order — including under per-network and global early
// stops, where the completed-prefix watermark decides when workers may quit.
TEST_F(TopKExecutorTest, ParallelMorselPathIsByteIdentical) {
  const std::vector<std::vector<std::string>> queries = {
      {"ullman", "widom"}, {"gray", "codd"}, {"stonebraker", "author47"}};
  for (const std::string& decomposition : {std::string("MinClust"),
                                           std::string("XKeyword")}) {
    for (size_t global_k : {size_t{0}, size_t{1}, size_t{10}}) {
      QueryOptions serial;
      serial.max_size_z = 6;
      serial.per_network_k = 50;
      serial.global_k = global_k;
      serial.num_threads = 1;
      serial.intra_plan_threads = 1;
      QueryOptions parallel = serial;
      parallel.intra_plan_threads = 4;
      parallel.morsel_size = 8;  // small: forces many morsels per plan
      for (const auto& q : queries) {
        XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> expected,
                                RunTopK(*xk_, q, decomposition, serial));
        XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> actual,
                                RunTopK(*xk_, q, decomposition, parallel));
        EXPECT_EQ(actual, expected)
            << decomposition << " global_k=" << global_k << " " << q[0] << ","
            << q[1];
      }
    }
  }
}

// Morsel scheduling with caching disabled (the naive inner loops) must agree
// with the serial naive run too — the merge logic is independent of caching.
TEST_F(TopKExecutorTest, ParallelMatchesSerialWithoutCache) {
  QueryOptions serial;
  serial.max_size_z = 6;
  serial.per_network_k = 50;
  serial.enable_cache = false;
  serial.num_threads = 1;
  QueryOptions parallel = serial;
  parallel.intra_plan_threads = 4;
  parallel.morsel_size = 8;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> expected,
                          RunTopK(*xk_, {"ullman", "widom"}, "MinClust", serial));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> actual,
                          RunTopK(*xk_, {"ullman", "widom"}, "MinClust", parallel));
  EXPECT_EQ(actual, expected);
}

// Semi-join pruning may only skip probes that cannot match: identical result
// lists, strictly fewer rows touched at probe time, and at least one probe
// rejected by a Bloom filter on this workload.
TEST_F(TopKExecutorTest, PruningPreservesResultsAndSkipsWork) {
  QueryOptions pruned;
  pruned.max_size_z = 6;
  pruned.per_network_k = 1000;
  pruned.num_threads = 1;
  pruned.enable_semijoin_pruning = true;
  QueryOptions unpruned = pruned;
  unpruned.enable_semijoin_pruning = false;

  bool any_skips = false;
  for (const auto& q : std::vector<std::vector<std::string>>{
           {"ullman", "widom"}, {"stonebraker", "author47"}}) {
    ExecutionStats pruned_stats, unpruned_stats;
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> with,
                            RunTopK(*xk_, q, "MinClust", pruned, &pruned_stats));
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> without,
                            RunTopK(*xk_, q, "MinClust", unpruned, &unpruned_stats));
    EXPECT_EQ(with, without) << q[0] << "," << q[1];
    EXPECT_EQ(unpruned_stats.probes.bloom_skips, 0u);
    if (pruned_stats.probes.bloom_skips > 0) {
      any_skips = true;
      // Every skipped probe saves its scan; build scans are counted apart.
      EXPECT_LT(pruned_stats.probes.rows_scanned,
                unpruned_stats.probes.rows_scanned);
      EXPECT_GT(pruned_stats.bloom_build_rows, 0u);
    }
  }
  EXPECT_TRUE(any_skips);
}

// Pruning and morsel parallelism compose without changing results.
TEST_F(TopKExecutorTest, PruningComposesWithMorselParallelism) {
  QueryOptions base;
  base.max_size_z = 6;
  base.per_network_k = 50;
  base.num_threads = 1;
  base.enable_semijoin_pruning = false;
  QueryOptions both = base;
  both.enable_semijoin_pruning = true;
  both.intra_plan_threads = 4;
  both.morsel_size = 8;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> expected,
                          RunTopK(*xk_, {"gray", "codd"}, "MinClust", base));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> actual,
                          RunTopK(*xk_, {"gray", "codd"}, "MinClust", both));
  EXPECT_EQ(actual, expected);
}

// Differential harness over the plan-DAG axes: subplan reuse {on, off} ×
// vectorized {on, off} × intra-plan threads {1, 4} must all produce the
// byte-identical result list (replay order equals the serial nested-loop
// order; the schedule never depends on these knobs), and on queries whose
// candidate networks share a join prefix the reuse runs must actually dedup
// work (subplan hits + saved rows).
TEST_F(TopKExecutorTest, SubplanReuseDifferential) {
  const std::vector<std::vector<std::string>> queries = {
      {"ullman", "widom"}, {"gray", "codd"}, {"stonebraker", "author47"}};
  uint64_t total_saved = 0;
  for (const std::string& decomposition :
       {std::string("MinClust"), std::string("XKeyword")}) {
    for (const auto& q : queries) {
      QueryOptions baseline;
      baseline.max_size_z = 6;
      baseline.per_network_k = 50;
      baseline.num_threads = 1;
      baseline.enable_subplan_reuse = false;
      XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> expected,
                              RunTopK(*xk_, q, decomposition, baseline));
      for (bool reuse : {false, true}) {
        for (bool vectorized : {false, true}) {
          for (int intra : {1, 4}) {
            QueryOptions options = baseline;
            options.enable_subplan_reuse = reuse;
            options.vectorized = vectorized;
            options.intra_plan_threads = intra;
            options.morsel_size = 8;
            ExecutionStats stats;
            XK_ASSERT_OK_AND_ASSIGN(
                std::vector<Mtton> actual,
                RunTopK(*xk_, q, decomposition, options, &stats));
            EXPECT_EQ(actual, expected)
                << decomposition << " reuse=" << reuse << " vec=" << vectorized
                << " intra=" << intra << " " << q[0] << "," << q[1];
            if (reuse) {
              total_saved += stats.dedup_saved_rows;
            } else {
              EXPECT_EQ(stats.subplan_hits, 0u);
              EXPECT_EQ(stats.dedup_saved_rows, 0u);
            }
          }
        }
      }
    }
  }
  // At least one workload query has candidate networks sharing a join prefix;
  // reuse must have saved recomputation there.
  EXPECT_GT(total_saved, 0u);
}

// The full-result executor's hash-join prefix memo composes with scan reuse
// and vectorization without changing output.
TEST_F(TopKExecutorTest, FullExecutorSubplanMemoDifferential) {
  QueryOptions baseline;
  baseline.max_size_z = 6;
  baseline.full_mode = FullMode::kHashJoin;
  baseline.enable_subplan_reuse = false;
  for (const auto& q : std::vector<std::vector<std::string>>{
           {"ullman", "widom"}, {"gray", "codd"}}) {
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> expected,
                            RunAll(*xk_, q, "MinClust", baseline));
    for (bool reuse : {false, true}) {
      for (bool scans : {false, true}) {
        QueryOptions full = baseline;
        full.enable_scan_reuse = scans;
        full.enable_subplan_reuse = reuse;
        ExecutionStats stats;
        XK_ASSERT_OK_AND_ASSIGN(
            std::vector<Mtton> actual,
            RunAll(*xk_, q, "MinClust", full, &stats));
        EXPECT_EQ(actual, expected)
            << "reuse=" << reuse << " scans=" << scans << " " << q[0];
        if (!(reuse && scans)) {
          EXPECT_EQ(stats.subplan_hits, 0u);
        }
      }
    }
  }
}

// Subplan stats surface through the engine: a reuse run on a shared-prefix
// query reports misses (leader materializations) and a byte high-water mark.
TEST_F(TopKExecutorTest, SubplanStatsAreReported) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 50;
  options.num_threads = 1;
  uint64_t hits = 0, misses = 0;
  for (const auto& q : std::vector<std::vector<std::string>>{
           {"ullman", "widom"}, {"gray", "codd"}, {"stonebraker", "author47"}}) {
    ExecutionStats stats;
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                            RunTopK(*xk_, q, "MinClust", options, &stats));
    (void)results;
    hits += stats.subplan_hits;
    misses += stats.subplan_misses;
    if (stats.subplan_misses > 0) EXPECT_GT(stats.subplan_bytes, 0u);
  }
  EXPECT_GT(misses, 0u);
  EXPECT_GT(hits, 0u);
}

// Single-object plans (one-keyword queries join nothing) must show up in the
// stats like every other plan: their scan and emitted results are counted.
TEST_F(TopKExecutorTest, SingleObjectPlansRecordStats) {
  QueryOptions options;
  options.max_size_z = 1;  // only the single-occurrence network survives
  options.per_network_k = 1000;
  options.num_threads = 1;
  ExecutionStats stats;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          RunTopK(*xk_, {"ullman"}, "MinClust", options, &stats));
  ASSERT_FALSE(results.empty());
  for (const Mtton& m : results) EXPECT_EQ(m.objects.size(), 1u);
  EXPECT_EQ(stats.results, results.size());
  EXPECT_GT(stats.probes.probes, 0u);
  EXPECT_GT(stats.probes.rows_scanned, 0u);

  // The intra-plan scheduler takes the same single-object shortcut.
  QueryOptions parallel = options;
  parallel.intra_plan_threads = 4;
  ExecutionStats parallel_stats;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> parallel_results,
                          RunTopK(*xk_, {"ullman"}, "MinClust", parallel, &parallel_stats));
  EXPECT_EQ(parallel_results, results);
  EXPECT_EQ(parallel_stats.results, results.size());
  EXPECT_GT(parallel_stats.probes.rows_scanned, 0u);
}

// The kernel-dispatch knob is a pure implementation switch: forcing every
// block kernel onto its scalar reference must reproduce the auto-dispatched
// result list byte for byte, across decompositions and the vectorized path.
// The dispatched ISA is reported through ExecutionStats.
TEST_F(TopKExecutorTest, ForceScalarKernelsAreByteIdentical) {
  const std::vector<std::vector<std::string>> queries = {
      {"ullman", "widom"}, {"gray", "codd"}, {"stonebraker", "author47"}};
  for (const std::string& decomposition :
       {std::string("MinClust"), std::string("XKeyword")}) {
    for (bool vectorized : {false, true}) {
      QueryOptions auto_dispatch;
      auto_dispatch.max_size_z = 6;
      auto_dispatch.per_network_k = 50;
      auto_dispatch.num_threads = 1;
      auto_dispatch.vectorized = vectorized;
      auto_dispatch.enable_semijoin_pruning = true;
      QueryOptions scalar = auto_dispatch;
      scalar.kernel_dispatch = KernelDispatch::kForceScalar;
      for (const auto& q : queries) {
        ExecutionStats auto_stats, scalar_stats;
        XK_ASSERT_OK_AND_ASSIGN(
            std::vector<Mtton> expected,
            RunTopK(*xk_, q, decomposition, auto_dispatch, &auto_stats));
        XK_ASSERT_OK_AND_ASSIGN(
            std::vector<Mtton> actual,
            RunTopK(*xk_, q, decomposition, scalar, &scalar_stats));
        EXPECT_EQ(actual, expected)
            << decomposition << " vec=" << vectorized << " " << q[0] << ","
            << q[1];
        // Forced-scalar runs always report the scalar ISA; auto runs report
        // whatever the process detected (scalar under XK_FORCE_SCALAR_KERNELS
        // or on non-SIMD builds, so only consistency is asserted).
        EXPECT_EQ(scalar_stats.simd_isa,
                  static_cast<uint32_t>(simd::IsaLevel::kScalar));
        EXPECT_EQ(auto_stats.simd_isa,
                  static_cast<uint32_t>(simd::DetectedIsaLevel()));
        // Kernel choice must not change what work is counted either.
        EXPECT_EQ(scalar_stats.probes.rows_scanned,
                  auto_stats.probes.rows_scanned);
        EXPECT_EQ(scalar_stats.probes.bloom_skips,
                  auto_stats.probes.bloom_skips);
      }
    }
  }
}

// kRequireSimd is an assertion knob: it must be rejected up front exactly when
// dispatch would silently fall back to scalar (non-SIMD build, unsupported
// CPU, or the XK_FORCE_SCALAR_KERNELS escape hatch), and accepted otherwise.
TEST_F(TopKExecutorTest, RequireSimdValidatesAgainstDetectedIsa) {
  QueryOptions options;
  options.kernel_dispatch = KernelDispatch::kRequireSimd;
  const Status status = options.Validate();
  if (simd::DetectedIsaLevel() == simd::IsaLevel::kScalar) {
    EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  } else {
    XK_EXPECT_OK(status);
    ExecutionStats stats;
    XK_ASSERT_OK_AND_ASSIGN(
        std::vector<Mtton> results,
        RunTopK(*xk_, {"ullman", "widom"}, "MinClust", options, &stats));
    (void)results;
    EXPECT_GT(stats.simd_isa, static_cast<uint32_t>(simd::IsaLevel::kScalar));
  }
}

}  // namespace
}  // namespace xk::engine
