// Tests for the candidate network generator and the CN -> CTSSN reduction.

#include <gtest/gtest.h>

#include <set>

#include "cn/cn_generator.h"
#include "cn/ctssn.h"
#include "datagen/dblp_gen.h"
#include "datagen/tpch_gen.h"
#include "test_util.h"

namespace xk::cn {
namespace {

using schema::SchemaNodeId;

class CnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tss_ = datagen::BuildTpchSchema(&schema_).MoveValueUnsafe();
    person_name_ = FindChild("person", "name");
    part_name_ = FindChild("part", "name");
    product_descr_ = FindChild("product", "descr");
    nation_ = FindChild("person", "nation");
  }

  SchemaNodeId FindChild(const char* parent, const char* child) {
    SchemaNodeId p = *schema_.NodeByUniqueLabel(parent);
    return *schema_.ChildByLabel(p, child);
  }

  std::vector<CandidateNetwork> Generate(
      std::vector<std::vector<SchemaNodeId>> keyword_nodes, int z) {
    CnGeneratorOptions opts;
    opts.max_size = z;
    CnGenerator gen(&schema_, opts);
    auto r = gen.Generate(keyword_nodes);
    XK_EXPECT_OK(r.status());
    return r.ok() ? r.MoveValueUnsafe() : std::vector<CandidateNetwork>{};
  }

  schema::SchemaGraph schema_;
  std::unique_ptr<schema::TssGraph> tss_;
  SchemaNodeId person_name_, part_name_, product_descr_, nation_;
};

TEST_F(CnTest, EveryNetworkIsTotalMinimalAndPossible) {
  auto cns = Generate({{person_name_}, {part_name_, product_descr_}}, 8);
  ASSERT_FALSE(cns.empty());
  for (const CandidateNetwork& cn : cns) {
    EXPECT_LE(cn.size(), 8);
    EXPECT_TRUE(CnStructurallyPossible(cn, schema_)) << cn.ToString(schema_);
    // Total: both keywords placed exactly once (disjoint partitions).
    std::vector<int> placed;
    for (const CnNode& n : cn.nodes) {
      placed.insert(placed.end(), n.keywords.begin(), n.keywords.end());
    }
    std::sort(placed.begin(), placed.end());
    EXPECT_EQ(placed, (std::vector<int>{0, 1})) << cn.ToString(schema_);
    // Minimal: leaves non-free.
    auto adj = cn.Adjacency();
    for (int v = 0; v < cn.num_nodes(); ++v) {
      if (adj[static_cast<size_t>(v)].size() <= 1) {
        EXPECT_FALSE(cn.nodes[static_cast<size_t>(v)].free())
            << cn.ToString(schema_);
      }
    }
  }
}

TEST_F(CnTest, NetworksAreDeduplicated) {
  auto cns = Generate({{person_name_}, {part_name_}}, 8);
  std::set<std::string> keys;
  for (const CandidateNetwork& cn : cns) {
    EXPECT_TRUE(keys.insert(cn.CanonicalKey()).second) << cn.ToString(schema_);
  }
}

TEST_F(CnTest, SortedBySize) {
  auto cns = Generate({{person_name_}, {part_name_, product_descr_}}, 8);
  for (size_t i = 1; i < cns.size(); ++i) {
    EXPECT_LE(cns[i - 1].size(), cns[i].size());
  }
}

TEST_F(CnTest, SizeBoundIsRespectedAndGrowsNetworks) {
  auto small = Generate({{person_name_}, {part_name_}}, 6);
  auto large = Generate({{person_name_}, {part_name_}}, 8);
  EXPECT_LT(small.size(), large.size());
  for (const CandidateNetwork& cn : small) EXPECT_LE(cn.size(), 6);
}

TEST_F(CnTest, KeywordOnMissingNodeYieldsNothing) {
  EXPECT_TRUE(Generate({{person_name_}, {}}, 6).empty());
}

TEST_F(CnTest, SingleNodeNetworkWhenOneNodeHoldsBothKeywords) {
  // Both keywords on part names: the single-occurrence network part^{0,1}
  // does NOT exist (a name node is one value; but part/name can hold both
  // tokens, e.g. "tv vcr"). The generator emits the size-0 network since
  // the schema node supports both.
  auto cns = Generate({{part_name_}, {part_name_}}, 4);
  bool found_single = false;
  for (const CandidateNetwork& cn : cns) {
    if (cn.size() == 0) {
      found_single = true;
      EXPECT_EQ(cn.nodes[0].keywords, (std::vector<int>{0, 1}));
    }
  }
  EXPECT_TRUE(found_single);
}

TEST_F(CnTest, ChoicePruningRejectsPartAndProductUnderOneLine) {
  SchemaNodeId line = *schema_.NodeByUniqueLabel("line");
  SchemaNodeId part = *schema_.NodeByUniqueLabel("part");
  SchemaNodeId product = *schema_.NodeByUniqueLabel("product");
  CandidateNetwork cn;
  cn.nodes = {CnNode{line, {}}, CnNode{part, {0}}, CnNode{product, {1}}};
  schema::SchemaEdgeId to_part = *schema_.FindReferenceEdge(line, part);
  schema::SchemaEdgeId to_product = *schema_.FindReferenceEdge(line, product);
  cn.edges = {CnEdge{0, 1, to_part}, CnEdge{0, 2, to_product}};
  EXPECT_FALSE(CnStructurallyPossible(cn, schema_));
}

TEST_F(CnTest, ToOneDuplicatePruning) {
  // One supplier dummy referencing two persons: impossible (maxOccurs 1).
  SchemaNodeId supplier = *schema_.NodeByUniqueLabel("supplier");
  SchemaNodeId person = *schema_.NodeByUniqueLabel("person");
  schema::SchemaEdgeId ref = *schema_.FindReferenceEdge(supplier, person);
  CandidateNetwork cn;
  cn.nodes = {CnNode{supplier, {}}, CnNode{person, {0}}, CnNode{person, {1}}};
  cn.edges = {CnEdge{0, 1, ref}, CnEdge{0, 2, ref}};
  EXPECT_FALSE(CnStructurallyPossible(cn, schema_));
}

TEST_F(CnTest, TwoContainmentParentsPruning) {
  SchemaNodeId person = *schema_.NodeByUniqueLabel("person");
  SchemaNodeId order = *schema_.NodeByUniqueLabel("order");
  schema::SchemaEdgeId edge = -1;
  for (schema::SchemaEdgeId e : schema_.out_edges(person)) {
    if (schema_.edge(e).to == order) edge = e;
  }
  ASSERT_NE(edge, -1);
  CandidateNetwork cn;
  cn.nodes = {CnNode{person, {0}}, CnNode{order, {}}, CnNode{person, {1}}};
  cn.edges = {CnEdge{0, 1, edge}, CnEdge{2, 1, edge}};
  EXPECT_FALSE(CnStructurallyPossible(cn, schema_));
}

// --- Reduction ---------------------------------------------------------------

TEST_F(CnTest, EveryGeneratedNetworkReduces) {
  auto cns = Generate({{person_name_}, {part_name_, product_descr_}}, 8);
  for (const CandidateNetwork& cn : cns) {
    auto reduced = ReduceToCtssn(cn, schema_, *tss_);
    XK_EXPECT_OK(reduced.status());
    if (!reduced.ok()) continue;
    EXPECT_EQ(reduced->cn_size, cn.size());
    XK_EXPECT_OK(reduced->tree.Validate(*tss_));
    // Keyword annotations survive with their schema nodes.
    int keywords = 0;
    for (const auto& kws : reduced->node_keywords) {
      keywords += static_cast<int>(kws.size());
    }
    EXPECT_EQ(keywords, 2);
  }
}

TEST_F(CnTest, ReductionMergesIntraSegmentOccurrencesAndAbsorbsDummies) {
  // name^{0} <- person <- supplier <- lineitem -> line -> product -> descr^{1}
  SchemaNodeId person = *schema_.NodeByUniqueLabel("person");
  SchemaNodeId supplier = *schema_.NodeByUniqueLabel("supplier");
  SchemaNodeId lineitem = *schema_.NodeByUniqueLabel("lineitem");
  SchemaNodeId line = *schema_.NodeByUniqueLabel("line");
  SchemaNodeId product = *schema_.NodeByUniqueLabel("product");

  auto edge_between = [&](SchemaNodeId a, SchemaNodeId b) {
    for (schema::SchemaEdgeId e : schema_.out_edges(a)) {
      if (schema_.edge(e).to == b) return e;
    }
    ADD_FAILURE();
    return -1;
  };

  CandidateNetwork cn;
  cn.nodes = {CnNode{person_name_, {0}}, CnNode{person, {}},
              CnNode{supplier, {}},      CnNode{lineitem, {}},
              CnNode{line, {}},          CnNode{product, {}},
              CnNode{product_descr_, {1}}};
  cn.edges = {CnEdge{1, 0, edge_between(person, person_name_)},
              CnEdge{2, 1, edge_between(supplier, person)},
              CnEdge{3, 2, edge_between(lineitem, supplier)},
              CnEdge{3, 4, edge_between(lineitem, line)},
              CnEdge{4, 5, edge_between(line, product)},
              CnEdge{5, 6, edge_between(product, product_descr_)}};

  XK_ASSERT_OK_AND_ASSIGN(Ctssn reduced, ReduceToCtssn(cn, schema_, *tss_));
  EXPECT_EQ(reduced.cn_size, 6);
  // Segments: P, L, Pr -> 3 nodes, 2 edges.
  EXPECT_EQ(reduced.num_nodes(), 3);
  EXPECT_EQ(reduced.tree.size(), 2);
  // Keywords sit on P (via name) and Pr (via descr).
  int annotated = 0;
  for (int v = 0; v < reduced.num_nodes(); ++v) {
    if (!reduced.IsFree(v)) ++annotated;
  }
  EXPECT_EQ(annotated, 2);
}

TEST_F(CnTest, ReductionHandlesRecursivePartChains) {
  // part^{0} -> sub -> part -> sub -> part^{1}: reduces to Pa-Pa-Pa chain.
  SchemaNodeId part = *schema_.NodeByUniqueLabel("part");
  SchemaNodeId sub = *schema_.NodeByUniqueLabel("sub");
  auto edge_between = [&](SchemaNodeId a, SchemaNodeId b) {
    for (schema::SchemaEdgeId e : schema_.out_edges(a)) {
      if (schema_.edge(e).to == b) return e;
    }
    return -1;
  };
  schema::SchemaEdgeId part_sub = edge_between(part, sub);
  schema::SchemaEdgeId sub_part = edge_between(sub, part);

  CandidateNetwork cn;
  cn.nodes = {CnNode{part_name_, {0}}, CnNode{part, {}}, CnNode{sub, {}},
              CnNode{part, {}},        CnNode{sub, {}},  CnNode{part, {}},
              CnNode{part_name_, {1}}};
  cn.edges = {CnEdge{1, 0, edge_between(part, part_name_)},
              CnEdge{1, 2, part_sub},
              CnEdge{2, 3, sub_part},
              CnEdge{3, 4, part_sub},
              CnEdge{4, 5, sub_part},
              CnEdge{5, 6, edge_between(part, part_name_)}};
  XK_ASSERT_OK_AND_ASSIGN(Ctssn reduced, ReduceToCtssn(cn, schema_, *tss_));
  EXPECT_EQ(reduced.num_nodes(), 3);
  EXPECT_EQ(reduced.tree.size(), 2);
  EXPECT_EQ(reduced.cn_size, 6);
}

TEST_F(CnTest, DblpGeneratorSmoke) {
  schema::SchemaGraph dblp;
  auto tss = datagen::BuildDblpSchema(&dblp).MoveValueUnsafe();
  SchemaNodeId author = *dblp.NodeByUniqueLabel("author");
  CnGeneratorOptions opts;
  opts.max_size = 6;
  CnGenerator gen(&dblp, opts);
  XK_ASSERT_OK_AND_ASSIGN(std::vector<CandidateNetwork> cns,
                          gen.Generate({{author}, {author}}));
  // Author-Paper-Author, plus citation-mediated shapes.
  ASSERT_FALSE(cns.empty());
  for (const CandidateNetwork& cn : cns) {
    XK_EXPECT_OK(ReduceToCtssn(cn, dblp, *tss).status());
  }
  // The singleton author^{0,1} sorts first (one author value can hold both
  // tokens); the classic A <- P -> A network of size 2 must follow.
  EXPECT_EQ(cns.front().size(), 0);
  bool found_apa = false;
  schema::SchemaNodeId paper = *dblp.NodeByUniqueLabel("paper");
  for (const CandidateNetwork& cn : cns) {
    if (cn.size() == 2 && cn.num_nodes() == 3) {
      int authors = 0;
      int papers = 0;
      for (const CnNode& n : cn.nodes) {
        if (n.schema_node == author) ++authors;
        if (n.schema_node == paper) ++papers;
      }
      if (authors == 2 && papers == 1) found_apa = true;
    }
  }
  EXPECT_TRUE(found_apa);
}

}  // namespace
}  // namespace xk::cn
