// Randomized property sweeps (TEST_P over generator seeds): for arbitrary
// DBLP-like instances and keyword pairs, every executor and every
// decomposition must produce the same result sets, and every result must be
// a genuine, keyword-complete tree of the target object graph.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"
#include "test_util.h"

namespace xk {
namespace {

using engine::ExecutionStats;
using engine::QueryOptions;
using engine::XKeyword;
using present::Mtton;
using testing::RunAll;
using testing::RunNaive;
using testing::RunTopK;

class QueryProperties : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    datagen::DblpConfig config;
    config.num_conferences = 3;
    config.years_per_conference = 3;
    config.avg_papers_per_year = 6;
    config.avg_citations_per_paper = 3.0;
    config.author_vocab = 25;
    config.title_vocab = 30;
    config.seed = static_cast<uint64_t>(GetParam());
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe();
    xk_ = XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe();
    XK_ASSERT_OK(xk_->AddDecomposition(decomp::MakeMinimal(
        db_->tss(), decomp::PhysicalDesign::kClusterPerDirection)));
    // M = 4 matches the queries' max_size_z below (CTSSN size <= CN size).
    XK_ASSERT_OK(xk_->AddDecomposition(
        decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/4).MoveValueUnsafe()));
    XK_ASSERT_OK(
        xk_->AddDecomposition(decomp::MakeComplete(db_->tss(), 2).MoveValueUnsafe()));

    // Keyword pairs drawn from the instance's vocabularies.
    Random rng(config.seed * 31 + 7);
    for (int i = 0; i < 3; ++i) {
      queries_.push_back({rng.Pick(db_->author_names()),
                          rng.Pick(db_->title_words())});
    }
    queries_.push_back({"ullman", "keyword"});
  }

  /// Multiset of result "shapes" — objects + score, network-agnostic is NOT
  /// desired: identical networks must match across executors.
  std::multiset<std::vector<storage::ObjectId>> Shapes(
      const std::vector<Mtton>& results) {
    std::multiset<std::vector<storage::ObjectId>> out;
    for (const Mtton& m : results) {
      std::vector<storage::ObjectId> key = m.objects;
      std::sort(key.begin(), key.end());
      key.push_back(m.ctssn_index);
      key.push_back(m.score);
      out.insert(std::move(key));
    }
    return out;
  }

  std::unique_ptr<datagen::DblpDatabase> db_;
  std::unique_ptr<XKeyword> xk_;
  std::vector<std::vector<std::string>> queries_;
};

TEST_P(QueryProperties, ExecutorsAgree) {
  QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 1u << 20;
  options.num_threads = 1;
  for (const auto& q : queries_) {
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> cached,
                            RunTopK(*xk_, q, "MinClust", options));
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> naive,
                            RunNaive(*xk_, q, "MinClust", options));
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> full,
                            RunAll(*xk_, q, "MinClust", options));
    EXPECT_EQ(Shapes(cached), Shapes(naive)) << q[0] << " " << q[1];
    EXPECT_EQ(Shapes(cached), Shapes(full)) << q[0] << " " << q[1];
  }
}

TEST_P(QueryProperties, DecompositionsAgree) {
  QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 1u << 20;
  options.num_threads = 1;
  for (const auto& q : queries_) {
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> minimal,
                            RunTopK(*xk_, q, "MinClust", options));
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> xkeyword,
                            RunTopK(*xk_, q, "XKeyword", options));
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> complete,
                            RunTopK(*xk_, q, "Complete", options));
    EXPECT_EQ(Shapes(minimal), Shapes(xkeyword)) << q[0] << " " << q[1];
    EXPECT_EQ(Shapes(minimal), Shapes(complete)) << q[0] << " " << q[1];
  }
}

TEST_P(QueryProperties, ResultsAreKeywordCompleteTrees) {
  QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 200;
  options.num_threads = 1;
  for (const auto& q : queries_) {
    XK_ASSERT_OK_AND_ASSIGN(engine::PreparedQuery prepared,
                            xk_->Prepare(q, "MinClust", options));
    engine::TopKExecutor executor;
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                            executor.Run(prepared, options));
    for (const Mtton& m : results) {
      const cn::Ctssn& c = prepared.ctssns[static_cast<size_t>(m.ctssn_index)];
      EXPECT_EQ(m.score, c.cn_size);
      // Edges exist in the target object graph.
      for (const schema::TssTreeEdge& e : c.tree.edges) {
        const std::vector<storage::ObjectId>& fwd = xk_->objects().Forward(
            m.objects[static_cast<size_t>(e.from)], e.tss_edge);
        ASSERT_NE(std::find(fwd.begin(), fwd.end(),
                            m.objects[static_cast<size_t>(e.to)]),
                  fwd.end());
      }
      // Keyword filters honored.
      for (int v = 0; v < c.num_nodes(); ++v) {
        for (const cn::CtssnKeyword& kw :
             c.node_keywords[static_cast<size_t>(v)]) {
          bool found = false;
          for (const keyword::Posting& p : xk_->master_index().ContainingList(
                   q[static_cast<size_t>(kw.keyword)])) {
            if (p.to_id == m.objects[static_cast<size_t>(v)] &&
                p.schema_node == kw.schema_node) {
              found = true;
              break;
            }
          }
          EXPECT_TRUE(found);
        }
      }
    }
  }
}

TEST_P(QueryProperties, NoDuplicateResultsWithinANetwork) {
  QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 1u << 20;
  options.num_threads = 1;
  for (const auto& q : queries_) {
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                            RunTopK(*xk_, q, "MinClust", options));
    std::set<std::pair<int, std::vector<storage::ObjectId>>> seen;
    for (const Mtton& m : results) {
      EXPECT_TRUE(seen.insert({m.ctssn_index, m.objects}).second)
          << "duplicate result in network " << m.ctssn_index;
    }
  }
}

TEST_P(QueryProperties, ScoresNondecreasingAndBounded) {
  QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 50;
  for (const auto& q : queries_) {
    XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                            RunTopK(*xk_, q, "MinClust", options));
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_LE(results[i - 1].score, results[i].score);
    }
    for (const Mtton& m : results) {
      EXPECT_GE(m.score, 0);
      EXPECT_LE(m.score, options.max_size_z);
    }
  }
}

TEST_P(QueryProperties, PresentationGraphInvariantAfterRandomActions) {
  QueryOptions options;
  options.max_size_z = 4;
  options.per_network_k = 64;
  options.num_threads = 1;
  const auto& q = queries_.back();  // "ullman keyword" always matches
  XK_ASSERT_OK_AND_ASSIGN(engine::PreparedQuery prepared,
                          xk_->Prepare(q, "MinClust", options));
  engine::TopKExecutor executor;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          executor.Run(prepared, options));
  std::map<int, int> per_network;
  for (const Mtton& m : results) ++per_network[m.ctssn_index];
  Random rng(static_cast<uint64_t>(GetParam()) + 999);
  for (const auto& [net, count] : per_network) {
    if (count < 2) continue;
    XK_ASSERT_OK_AND_ASSIGN(present::PresentationGraph pg,
                            xk_->MakePresentationGraph(prepared, net, results));
    const cn::Ctssn& c = prepared.ctssns[static_cast<size_t>(net)];
    for (int action = 0; action < 8; ++action) {
      int occ = static_cast<int>(rng.Uniform(0, c.num_nodes() - 1));
      if (rng.OneIn(3) && pg.IsExpanded(occ)) {
        // Contract onto an arbitrary displayed object of this role.
        for (const auto& [o, obj] : pg.Displayed()) {
          if (o == occ) {
            XK_ASSERT_OK(pg.Contract(occ, obj));
            break;
          }
        }
      } else {
        XK_ASSERT_OK(pg.Expand(occ));
      }
      ASSERT_TRUE(pg.InvariantHolds()) << "network " << net;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryProperties, ::testing::Range(1, 7));

}  // namespace
}  // namespace xk
