// Tests for the XML substrate: graph model, parser, writer, round-trips.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "test_util.h"
#include "xml/xml_graph.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace xk::xml {
namespace {

TEST(XmlGraphTest, NodesLabelsValues) {
  XmlGraph g;
  NodeId a = g.AddNode("person");
  NodeId b = g.AddNode("name", "John");
  EXPECT_EQ(g.NumNodes(), 2);
  EXPECT_EQ(g.label(a), "person");
  EXPECT_FALSE(g.has_value(a));
  EXPECT_EQ(g.value(a), "");
  EXPECT_TRUE(g.has_value(b));
  EXPECT_EQ(g.value(b), "John");
  g.SetValue(a, "late value");
  EXPECT_EQ(g.value(a), "late value");
}

TEST(XmlGraphTest, ContainmentIsSingleParent) {
  XmlGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  XK_ASSERT_OK(g.AddContainmentEdge(a, c));
  EXPECT_TRUE(g.AddContainmentEdge(b, c).IsInvalidArgument());
  EXPECT_TRUE(g.AddContainmentEdge(a, a).IsInvalidArgument());
  EXPECT_TRUE(g.AddContainmentEdge(a, 99).IsOutOfRange());
  EXPECT_EQ(g.parent(c), a);
  EXPECT_EQ(g.parent(a), kNoNode);
  EXPECT_EQ(g.children(a), std::vector<NodeId>{c});
  EXPECT_EQ(g.NumContainmentEdges(), 1);
}

TEST(XmlGraphTest, ReferencesAndUndirectedNeighbors) {
  XmlGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  XK_ASSERT_OK(g.AddContainmentEdge(a, b));
  XK_ASSERT_OK(g.AddReferenceEdge(b, c));
  EXPECT_EQ(g.references_out(b), std::vector<NodeId>{c});
  EXPECT_EQ(g.references_in(c), std::vector<NodeId>{b});
  EXPECT_EQ(g.NumReferenceEdges(), 1);
  // b's neighbors: parent a, ref target c.
  std::vector<NodeId> n = g.UndirectedNeighbors(b);
  EXPECT_EQ(n.size(), 2u);
  // Multiple roots: a and c.
  EXPECT_EQ(g.Roots(), (std::vector<NodeId>{a, c}));
}

TEST(XmlParserTest, BasicDocument) {
  auto doc = ParseXml("<person><name>John</name><nation>US</nation></person>");
  XK_ASSERT_OK(doc.status());
  const XmlGraph& g = doc->graph;
  ASSERT_EQ(doc->roots.size(), 1u);
  NodeId person = doc->roots[0];
  EXPECT_EQ(g.label(person), "person");
  ASSERT_EQ(g.children(person).size(), 2u);
  EXPECT_EQ(g.value(g.children(person)[0]), "John");
  EXPECT_EQ(g.value(g.children(person)[1]), "US");
}

TEST(XmlParserTest, AttributesBecomeChildrenExceptIds) {
  auto doc = ParseXml(R"(<part id="p1" key="1005"><sub idref="p1"/></part>)");
  XK_ASSERT_OK(doc.status());
  const XmlGraph& g = doc->graph;
  NodeId part = doc->roots[0];
  // key attribute -> child node; id consumed; idref -> reference edge.
  ASSERT_EQ(g.children(part).size(), 2u);  // key child + sub element
  EXPECT_EQ(g.label(g.children(part)[0]), "key");
  EXPECT_EQ(g.value(g.children(part)[0]), "1005");
  NodeId sub = g.children(part)[1];
  EXPECT_EQ(g.references_out(sub), std::vector<NodeId>{part});
  EXPECT_EQ(doc->ids.at("p1"), part);
}

TEST(XmlParserTest, IdrefsSplitsOnWhitespace) {
  auto doc = ParseXml(
      R"(<r><a id="x"/><a id="y"/><b idrefs="x  y"/></r>)");
  XK_ASSERT_OK(doc.status());
  const XmlGraph& g = doc->graph;
  NodeId b = g.children(doc->roots[0])[2];
  EXPECT_EQ(g.references_out(b).size(), 2u);
}

TEST(XmlParserTest, MultiRootForest) {
  auto doc = ParseXml("<a/><b/><c>text</c>");
  XK_ASSERT_OK(doc.status());
  EXPECT_EQ(doc->roots.size(), 3u);
  EXPECT_EQ(doc->graph.value(doc->roots[2]), "text");
}

TEST(XmlParserTest, PrologCommentsCdataEntities) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]>\n"
      "<!-- top comment -->\n"
      "<r>a &amp; b <!-- inner --> &lt;tag&gt; <![CDATA[<raw>&]]> &#65;&#x42;</r>");
  XK_ASSERT_OK(doc.status());
  EXPECT_EQ(doc->graph.value(doc->roots[0]), "a & b  <tag> <raw>& AB");
}

TEST(XmlParserTest, SelfClosingAndNesting) {
  auto doc = ParseXml("<a><b/><c><d/></c></a>");
  XK_ASSERT_OK(doc.status());
  const XmlGraph& g = doc->graph;
  NodeId a = doc->roots[0];
  ASSERT_EQ(g.children(a).size(), 2u);
  EXPECT_EQ(g.children(g.children(a)[1]).size(), 1u);
}

TEST(XmlParserTest, ErrorsCarryPositions) {
  auto r1 = ParseXml("<a><b></a>");
  ASSERT_TRUE(r1.status().IsCorruption());
  EXPECT_NE(r1.status().message().find("line 1"), std::string::npos);

  EXPECT_TRUE(ParseXml("<a>").status().IsCorruption());        // unterminated
  EXPECT_TRUE(ParseXml("text only").status().IsCorruption());  // no element
  EXPECT_TRUE(ParseXml("").status().IsCorruption());           // empty
  EXPECT_TRUE(ParseXml("<a attr></a>").status().IsCorruption());
  EXPECT_TRUE(ParseXml("<a x=\"&bogus;\"/>").status().IsCorruption());
  EXPECT_TRUE(ParseXml("<a x=\"unclosed/>").status().IsCorruption());
}

TEST(XmlParserTest, DuplicateIdRejected) {
  EXPECT_TRUE(
      ParseXml(R"(<r><a id="x"/><b id="x"/></r>)").status().IsCorruption());
}

TEST(XmlParserTest, UnresolvedReferenceStrictVsLenient) {
  const char* input = R"(<r><a idref="ghost"/></r>)";
  EXPECT_TRUE(ParseXml(input).status().IsCorruption());
  ParserOptions lenient;
  lenient.strict_references = false;
  auto doc = ParseXml(input, lenient);
  XK_ASSERT_OK(doc.status());
  EXPECT_EQ(doc->graph.NumReferenceEdges(), 0);
}

TEST(XmlWriterTest, EscapesSpecials) {
  EXPECT_EQ(EscapeXml("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(XmlWriterTest, SubtreeRestriction) {
  XmlGraph g;
  NodeId person = g.AddNode("person");
  NodeId name = g.AddNode("name", "John");
  NodeId order = g.AddNode("order");
  XK_ASSERT_OK(g.AddContainmentEdge(person, name));
  XK_ASSERT_OK(g.AddContainmentEdge(person, order));
  std::unordered_set<NodeId> only_person = {person, name};
  std::string xml = WriteSubtree(g, person, &only_person);
  EXPECT_EQ(xml, "<person><name>John</name></person>");
  std::string full = WriteSubtree(g, person);
  EXPECT_NE(full.find("<order/>"), std::string::npos);
}

TEST(XmlWriterTest, RoundTripGeneratedDatabase) {
  datagen::TpchConfig config;
  config.num_persons = 8;
  config.num_parts = 12;
  config.num_products = 6;
  config.seed = 5;
  XK_ASSERT_OK_AND_ASSIGN(auto db, datagen::TpchDatabase::Generate(config));

  std::string xml = WriteGraph(db->graph(), /*pretty=*/false, /*with_ids=*/true);
  auto doc = ParseXml(xml);
  XK_ASSERT_OK(doc.status());
  EXPECT_EQ(doc->graph.NumNodes(), db->graph().NumNodes());
  EXPECT_EQ(doc->graph.NumContainmentEdges(), db->graph().NumContainmentEdges());
  EXPECT_EQ(doc->graph.NumReferenceEdges(), db->graph().NumReferenceEdges());
  EXPECT_EQ(doc->roots.size(), db->graph().Roots().size());
}

TEST(XmlWriterTest, PrettyPrintingIndents) {
  XmlGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b", "v");
  XK_ASSERT_OK(g.AddContainmentEdge(a, b));
  std::string xml = WriteSubtree(g, a, nullptr, /*pretty=*/true);
  EXPECT_NE(xml.find("\n  <b>"), std::string::npos);
}

}  // namespace
}  // namespace xk::xml
