// Tests for MTTON rendering and presentation-graph semantics (Section 3.2) —
// including the Figure 2/3 scenario: four results N1..N4 over two lineitems
// and two VCR sub-parts, expanded and contracted per the formal properties.

#include <gtest/gtest.h>

#include "present/mtton.h"
#include "present/presentation_graph.h"
#include "test_util.h"

namespace xk::present {
namespace {

class PresentationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeFigure1Database();
    // Network P - L - Pa - Pa (person supplies lineitem whose part has a
    // sub-part), the CTSSN behind Figure 2's N1..N4.
    schema::TssId p = *db_->tss->SegmentByName("P");
    schema::TssId l = *db_->tss->SegmentByName("L");
    schema::TssId pa = *db_->tss->SegmentByName("Pa");
    ctssn_.tree.nodes = {p, l, pa, pa};
    ctssn_.tree.edges = {
        schema::TssTreeEdge{1, 0, *db_->tss->FindEdge(l, p)},
        schema::TssTreeEdge{1, 2, *db_->tss->FindEdge(l, pa)},
        schema::TssTreeEdge{2, 3, *db_->tss->FindEdge(pa, pa)}};
    ctssn_.node_keywords.resize(4);
    ctssn_.cn_size = 8;
  }

  /// N_i: (person=100, lineitem=li, tv=300, vcr).
  Mtton N(storage::ObjectId li, storage::ObjectId vcr) {
    return Mtton{0, {100, li, 300, vcr}, 8};
  }

  std::unique_ptr<testing::Figure1Database> db_;
  cn::Ctssn ctssn_;
};

TEST_F(PresentationTest, InitialDisplayIsFirstResult) {
  PresentationGraph pg(&ctssn_);
  pg.AddMtton(N(201, 401));
  pg.AddMtton(N(202, 402));
  EXPECT_EQ(pg.NumMttons(), 2u);
  EXPECT_EQ(pg.Displayed().size(), 4u);
  EXPECT_TRUE(pg.IsDisplayed(1, 201));
  EXPECT_FALSE(pg.IsDisplayed(1, 202));
  EXPECT_TRUE(pg.InvariantHolds());
}

TEST_F(PresentationTest, DuplicateResultsIgnored) {
  PresentationGraph pg(&ctssn_);
  pg.AddMtton(N(201, 401));
  pg.AddMtton(N(201, 401));
  EXPECT_EQ(pg.NumMttons(), 1u);
}

TEST_F(PresentationTest, ExpandShowsAllObjectsOfRole) {
  // Figure 3(b): clicking the lineitem displays all lineitems connected to
  // the person and part of the initial tree.
  PresentationGraph pg(&ctssn_);
  pg.AddMtton(N(201, 401));
  pg.AddMtton(N(202, 401));
  pg.AddMtton(N(202, 402));
  pg.AddMtton(N(201, 402));
  XK_ASSERT_OK(pg.Expand(1));
  EXPECT_TRUE(pg.IsDisplayed(1, 201));
  EXPECT_TRUE(pg.IsDisplayed(1, 202));
  EXPECT_TRUE(pg.IsExpanded(1));
  // Property (c): every displayed node on a displayed result.
  EXPECT_TRUE(pg.InvariantHolds());
  // Minimality: the second VCR was NOT needed to show lineitem 202.
  EXPECT_FALSE(pg.IsDisplayed(3, 402));
}

TEST_F(PresentationTest, ExpandIsMonotonic) {
  PresentationGraph pg(&ctssn_);
  pg.AddMtton(N(201, 401));
  pg.AddMtton(N(202, 402));
  auto before = pg.Displayed();
  XK_ASSERT_OK(pg.Expand(3));
  for (const DisplayNode& n : before) {
    EXPECT_TRUE(pg.Displayed().contains(n));  // property (a)
  }
  EXPECT_TRUE(pg.InvariantHolds());
}

TEST_F(PresentationTest, ContractKeepsOnlyChosenRoleObject) {
  // Figure 3(c): contract back onto one lineitem.
  PresentationGraph pg(&ctssn_);
  pg.AddMtton(N(201, 401));
  pg.AddMtton(N(202, 401));
  pg.AddMtton(N(202, 402));
  XK_ASSERT_OK(pg.Expand(1));
  XK_ASSERT_OK(pg.Expand(3));
  ASSERT_TRUE(pg.IsDisplayed(1, 202));
  XK_ASSERT_OK(pg.Contract(1, 201));
  // (b) 201 is the only lineitem left.
  EXPECT_TRUE(pg.IsDisplayed(1, 201));
  EXPECT_FALSE(pg.IsDisplayed(1, 202));
  // (c)+(d): maximal valid subgraph through 201.
  EXPECT_TRUE(pg.IsDisplayed(3, 401));
  EXPECT_FALSE(pg.IsDisplayed(3, 402));  // 402 only reachable via 202
  EXPECT_TRUE(pg.InvariantHolds());
  EXPECT_FALSE(pg.IsExpanded(1));
}

TEST_F(PresentationTest, ContractValidatesArguments) {
  PresentationGraph pg(&ctssn_);
  pg.AddMtton(N(201, 401));
  EXPECT_TRUE(pg.Contract(9, 201).IsOutOfRange());
  EXPECT_TRUE(pg.Contract(1, 999).IsNotFound());
  EXPECT_TRUE(pg.Expand(-1).IsOutOfRange());
}

TEST_F(PresentationTest, ExpandHonorsNodeBudget) {
  PresentationGraph pg(&ctssn_);
  pg.AddMtton(N(201, 401));
  for (storage::ObjectId li = 210; li < 230; ++li) pg.AddMtton(N(li, 401));
  // "if the expanded nodes are too many to fit in the screen then only the
  // first 10 are displayed".
  XK_ASSERT_OK(pg.Expand(1, /*max_new_nodes=*/10));
  size_t lineitems = 0;
  for (const DisplayNode& n : pg.Displayed()) {
    if (n.first == 1) ++lineitems;
  }
  EXPECT_LE(lineitems, 11u);  // initial + up to 10 new
  EXPECT_TRUE(pg.InvariantHolds());
}

TEST_F(PresentationTest, DisplayedEdgesComeFromContainedResults) {
  PresentationGraph pg(&ctssn_);
  pg.AddMtton(N(201, 401));
  pg.AddMtton(N(202, 402));
  auto edges = pg.DisplayedEdges();
  // Only N(201,401) displayed -> its 3 edges.
  EXPECT_EQ(edges.size(), 3u);
  XK_ASSERT_OK(pg.Expand(1));
  EXPECT_GT(pg.DisplayedEdges().size(), 3u);
}

TEST_F(PresentationTest, RenderMttonShowsBlobsAndAnnotations) {
  storage::BlobStore blobs;
  XK_ASSERT_OK(blobs.Put(100, "<person><name>John</name></person>"));
  XK_ASSERT_OK(blobs.Put(201, "<lineitem/>"));
  XK_ASSERT_OK(blobs.Put(300, "<part><name>TV</name></part>"));
  XK_ASSERT_OK(blobs.Put(401, "<part><name>VCR</name></part>"));
  std::string text = RenderMtton(N(201, 401), ctssn_, *db_->tss, blobs);
  EXPECT_NE(text.find("John"), std::string::npos);
  EXPECT_NE(text.find("score 8"), std::string::npos);
  EXPECT_NE(text.find("sub-part"), std::string::npos);  // edge annotation
}

TEST(MttonTest, HashDistinguishesNetworksAndObjects) {
  MttonHash hash;
  Mtton a{0, {1, 2}, 3};
  Mtton b{0, {1, 2}, 3};
  Mtton c{1, {1, 2}, 3};
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace xk::present
