// Differential harness for deadline-aware anytime execution:
//
//  * Inertness — with no deadline and no cost budget, enable_anytime on vs.
//    off must be BYTE-IDENTICAL across every mode x shard count x reuse x
//    vectorized x thread-count combination (the anytime machinery may exist
//    only as a ledger there).
//  * Soundness — under a deterministic cost budget, the result prefix drawn
//    from CN size classes <= Coverage::exhausted_class must byte-match the
//    unbounded run: the budget skips whole networks, never truncates the
//    classes it claims exhausted.
//  * Monotonicity — a larger budget never lowers exhausted_class (the
//    schedule-prefix admission argument in DESIGN.md Section 3g), and a
//    budget covering the whole schedule reports kComplete.
//  * Serving — degraded answers are counted by Metrics, carry a consistent
//    coverage bound, and are never cached (tsan-labeled: many concurrent
//    clients degrade at once).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datagen/dblp_gen.h"
#include "engine/sharded_engine.h"
#include "engine/xkeyword.h"
#include "service/query_service.h"
#include "test_util.h"

namespace xk {
namespace {

using engine::Completeness;
using engine::Coverage;
using engine::QueryMode;
using engine::QueryOptions;
using engine::QueryRequest;
using engine::QueryResponse;
using engine::ShardedEngine;
using engine::ShardedEngineOptions;
using engine::XKeyword;
using present::Mtton;
using std::chrono::milliseconds;

class AnytimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DblpConfig config;
    config.num_conferences = 4;
    config.years_per_conference = 4;
    config.avg_papers_per_year = 10;
    config.avg_citations_per_paper = 6.0;
    config.author_vocab = 60;
    config.title_vocab = 60;
    config.seed = 1704;
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe().release();
    xk_ = XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe()
              .release();
    XK_ASSERT_OK(xk_->AddDecomposition(
        decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/6).MoveValueUnsafe()));
    ShardedEngineOptions sharded_options;
    sharded_options.num_slices = 4;
    sharded_ = ShardedEngine::Load(&db_->graph(), &db_->schema(), &db_->tss(),
                                   sharded_options)
                   .MoveValueUnsafe()
                   .release();
    XK_ASSERT_OK(sharded_->AddDecomposition(
        decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/6).MoveValueUnsafe()));
  }

  static void TearDownTestSuite() {
    delete sharded_;
    sharded_ = nullptr;
    delete xk_;
    xk_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static QueryRequest Request(QueryMode mode, const QueryOptions& options) {
    QueryRequest request;
    request.keywords = {"gray", "codd"};
    request.decomposition = "XKeyword";
    request.mode = mode;
    request.options = options;
    return request;
  }

  /// ctssn_index -> CN size class, from a deterministic re-preparation.
  static std::map<int, int> ClassOf(const QueryOptions& options) {
    auto prepared = xk_->Prepare({"gray", "codd"}, "XKeyword", options);
    XK_EXPECT_OK(prepared.status());
    std::map<int, int> class_of;
    for (size_t p = 0; p < prepared->ctssns.size(); ++p) {
      class_of[static_cast<int>(p)] = prepared->ctssns[p].cn_size;
    }
    return class_of;
  }

  /// The results of `mttons` whose network's size class is <= bound, in
  /// response order (the order must survive filtering for the comparison to
  /// be byte-level).
  static std::vector<Mtton> PrefixOfClass(const std::vector<Mtton>& mttons,
                                          const std::map<int, int>& class_of,
                                          int bound) {
    std::vector<Mtton> prefix;
    for (const Mtton& m : mttons) {
      if (class_of.at(m.ctssn_index) <= bound) prefix.push_back(m);
    }
    return prefix;
  }

  static datagen::DblpDatabase* db_;
  static XKeyword* xk_;
  static ShardedEngine* sharded_;
};

datagen::DblpDatabase* AnytimeTest::db_ = nullptr;
XKeyword* AnytimeTest::xk_ = nullptr;
ShardedEngine* AnytimeTest::sharded_ = nullptr;

// With no deadline and no cost budget the anytime knob must be inert:
// byte-identical responses for every mode/shard/reuse/vectorized/thread
// combination, all reported complete.
TEST_F(AnytimeTest, UnboundedAnytimeIsByteIdenticalAcrossKnobMatrix) {
  for (QueryMode mode : {QueryMode::kTopK, QueryMode::kNaive, QueryMode::kAll}) {
    for (int num_shards : {0, 1, 3}) {  // 0 = single-instance engine
      for (bool reuse : {false, true}) {
        for (bool vectorized : {false, true}) {
          for (int threads : {1, 4}) {
            QueryOptions options;
            options.max_size_z = 6;
            options.per_network_k = 50;
            options.enable_subplan_reuse = reuse;
            options.enable_scan_reuse = reuse;
            options.vectorized = vectorized;
            options.num_threads = threads;
            options.num_shards = num_shards == 0 ? 1 : num_shards;
            const engine::QueryEngine& target =
                num_shards == 0 ? static_cast<const engine::QueryEngine&>(*xk_)
                                : *sharded_;

            QueryRequest off = Request(mode, options);
            off.options.enable_anytime = false;
            QueryRequest on = Request(mode, options);
            on.options.enable_anytime = true;

            const std::string what =
                (::testing::Message()
                 << "mode=" << static_cast<int>(mode) << " shards="
                 << num_shards << " reuse=" << reuse << " vectorized="
                 << vectorized << " threads=" << threads)
                    .GetString();
            XK_ASSERT_OK_AND_ASSIGN(QueryResponse a, target.Run(off));
            XK_ASSERT_OK_AND_ASSIGN(QueryResponse b, target.Run(on));
            ASSERT_TRUE(a.status.ok()) << what;
            ASSERT_TRUE(b.status.ok()) << what;
            EXPECT_EQ(a.mttons, b.mttons) << what;
            EXPECT_EQ(a.completeness, Completeness::kComplete) << what;
            EXPECT_EQ(b.completeness, Completeness::kComplete) << what;
            EXPECT_TRUE(b.coverage.complete()) << what;
            EXPECT_EQ(b.coverage.cns_skipped, 0u) << what;
          }
        }
      }
    }
  }
}

// Soundness of the exhausted-class bound: for any cost budget, every result
// from a size class the response claims exhausted must byte-match the
// unbounded run's results from those classes.
TEST_F(AnytimeTest, CostBudgetExhaustedClassPrefixMatchesUnboundedRun) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 20;
  const std::map<int, int> class_of = ClassOf(options);

  XK_ASSERT_OK_AND_ASSIGN(QueryResponse unbounded,
                          xk_->Run(Request(QueryMode::kTopK, options)));
  ASSERT_EQ(unbounded.completeness, Completeness::kComplete);

  for (double budget : {1.0, 10.0, 100.0, 1e3, 1e4, 1e6, 1e9}) {
    QueryOptions bounded = options;
    bounded.enable_anytime = true;
    bounded.anytime_cost_budget = budget;
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse response,
                            xk_->Run(Request(QueryMode::kTopK, bounded)));
    ASSERT_TRUE(response.status.ok()) << "budget=" << budget;
    const Coverage& cov = response.coverage;
    EXPECT_FALSE(cov.interrupted) << "budget=" << budget;
    EXPECT_EQ(cov.cns_executed + cov.cns_skipped,
              unbounded.coverage.cns_executed)
        << "budget=" << budget;
    // The guaranteed prefix: classes <= exhausted_class, byte-identical.
    EXPECT_EQ(PrefixOfClass(response.mttons, class_of, cov.exhausted_class),
              PrefixOfClass(unbounded.mttons, class_of, cov.exhausted_class))
        << "budget=" << budget;
    // The completeness label must agree with the coverage arithmetic.
    if (cov.cns_skipped == 0) {
      EXPECT_EQ(response.completeness, Completeness::kComplete);
      EXPECT_EQ(response.mttons, unbounded.mttons);
    } else {
      EXPECT_NE(response.completeness, Completeness::kComplete);
    }
  }
}

// A larger budget never lowers the exhausted-class bound, and a budget
// covering the whole schedule converges to the complete answer. (Note the
// guarantee is on exhausted_class: the count of executed CNs is NOT monotone
// under greedy skip-and-continue admission.)
TEST_F(AnytimeTest, ExhaustedClassMonotoneInCostBudget) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 20;
  int previous_class = -2;
  uint32_t previous_skipped = 0;
  bool first = true;
  for (double budget : {1.0, 5.0, 50.0, 500.0, 5e3, 5e4, 5e6, 1e12}) {
    QueryOptions bounded = options;
    bounded.enable_anytime = true;
    bounded.anytime_cost_budget = budget;
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse response,
                            xk_->Run(Request(QueryMode::kTopK, bounded)));
    EXPECT_GE(response.coverage.exhausted_class, previous_class)
        << "budget=" << budget;
    if (!first) {
      EXPECT_LE(response.coverage.cns_skipped, previous_skipped)
          << "budget=" << budget;
    }
    previous_class = response.coverage.exhausted_class;
    previous_skipped = response.coverage.cns_skipped;
    first = false;
    if (budget >= 1e12) {
      EXPECT_EQ(response.completeness, Completeness::kComplete);
    }
  }
}

// The sharded coordinator admits plans in the same cost-ordered schedule as
// the single-instance engine, so a deterministic budget yields the same
// coverage bound and the same guaranteed prefix on both.
TEST_F(AnytimeTest, ShardedCostBudgetMatchesSingleEngine) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 20;
  options.enable_anytime = true;
  for (double budget : {10.0, 1e3, 1e6}) {
    options.anytime_cost_budget = budget;
    for (int shards : {1, 3}) {
      options.num_shards = shards;
      XK_ASSERT_OK_AND_ASSIGN(QueryResponse single,
                              xk_->Run(Request(QueryMode::kTopK, options)));
      XK_ASSERT_OK_AND_ASSIGN(QueryResponse sharded,
                              sharded_->Run(Request(QueryMode::kTopK, options)));
      const std::string what =
          (::testing::Message() << "budget=" << budget << " shards=" << shards)
              .GetString();
      EXPECT_EQ(single.mttons, sharded.mttons) << what;
      EXPECT_EQ(single.coverage.cns_executed, sharded.coverage.cns_executed)
          << what;
      EXPECT_EQ(single.coverage.cns_skipped, sharded.coverage.cns_skipped)
          << what;
      EXPECT_EQ(single.coverage.exhausted_class,
                sharded.coverage.exhausted_class)
          << what;
      EXPECT_EQ(single.completeness, sharded.completeness) << what;
    }
  }
}

// Serving layer under concurrent degradation (tsan-labeled): many clients
// with budgets too small for the full schedule; every kDegraded response
// counts in Metrics, and no degraded answer is ever served from the cache.
TEST_F(AnytimeTest, ConcurrentDegradedQueriesCountedAndNeverCached) {
  service::QueryServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.queue_capacity = 64;
  XK_ASSERT_OK_AND_ASSIGN(std::unique_ptr<service::QueryService> service,
                          service::QueryService::Create(xk_, service_options));

  QueryOptions degraded_options;
  degraded_options.max_size_z = 6;
  degraded_options.per_network_k = 20;
  degraded_options.enable_anytime = true;
  degraded_options.anytime_cost_budget = 50.0;  // too small for the schedule

  std::vector<service::QueryHandle> handles;
  for (int i = 0; i < 16; ++i) {
    QueryRequest request = Request(QueryMode::kTopK, degraded_options);
    // Defeat coalescing/caching collapse so every submit truly executes:
    // vary a fingerprinted, result-shaping knob.
    request.options.global_k = 1000 + static_cast<size_t>(i);
    XK_ASSERT_OK_AND_ASSIGN(service::QueryHandle h,
                            service->Submit(request));
    handles.push_back(std::move(h));
  }
  uint64_t degraded_seen = 0;
  for (service::QueryHandle& h : handles) {
    XK_ASSERT_OK_AND_ASSIGN(QueryResponse response, h.Wait());
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    if (response.completeness == Completeness::kDegraded) ++degraded_seen;
    // A degraded bound must be self-consistent.
    if (response.completeness != Completeness::kComplete) {
      EXPECT_GT(response.coverage.cns_skipped + (response.coverage.interrupted ? 1u : 0u), 0u);
    }
  }
  EXPECT_GT(degraded_seen, 0u);
  EXPECT_EQ(service->metrics().Snapshot().degraded, degraded_seen);

  // Re-submitting one of the degraded requests with an unbounded budget must
  // yield the complete answer: had the degraded response been cached, the
  // cache would replay it here (the key ignores anytime knobs by design).
  QueryRequest roomy = Request(QueryMode::kTopK, degraded_options);
  roomy.options.global_k = 1000;
  roomy.options.anytime_cost_budget = 0;
  XK_ASSERT_OK_AND_ASSIGN(service::QueryHandle h, service->Submit(roomy));
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse complete, h.Wait());
  EXPECT_EQ(complete.completeness, Completeness::kComplete);
  XK_ASSERT_OK_AND_ASSIGN(QueryResponse oracle,
                          xk_->Run(roomy));
  EXPECT_EQ(complete.mttons, oracle.mttons);
  service->Shutdown();
}

}  // namespace
}  // namespace xk
