// Tests for the socket serving front-end (net::Server / net::Client): wire
// round-trips, the streamed-vs-in-process differential matrix (byte-identical
// responses), mid-stream client disconnect cancelling the server-side query,
// protocol cancel frames, malformed-frame rejection, and backpressure
// bookkeeping in the metrics registry.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "test_util.h"

namespace xk::net {
namespace {

using engine::Completeness;
using engine::QueryMode;
using engine::QueryRequest;
using engine::QueryResponse;
using service::MetricsSnapshot;
using service::QueryService;
using std::chrono::milliseconds;

// --- Wire round-trips (no server needed) ----------------------------------

std::span<const uint8_t> PayloadOf(const std::string& frame) {
  // Strip the 4-byte length prefix EncodeXxxFrame produced.
  return std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(frame.data()) + 4, frame.size() - 4);
}

present::Mtton MakeMtton(int ctssn_index, int score,
                         std::initializer_list<storage::ObjectId> objects) {
  present::Mtton m;
  m.ctssn_index = ctssn_index;
  m.score = score;
  m.objects = objects;
  return m;
}

TEST(WireTest, QueryFrameRoundTrip) {
  QueryRequest request;
  request.keywords = {"john", "vcr", "john"};
  request.decomposition = "XKeyword";
  request.mode = QueryMode::kAll;
  request.deadline = milliseconds(250);
  request.cache_mode = engine::CacheMode::kRefresh;
  request.options.max_size_z = 5;
  request.options.per_network_k = 7;
  request.options.global_k = 11;
  request.options.vectorized = false;
  request.options.intra_plan_threads = 3;
  request.options.anytime_cost_budget = 123.5;
  request.options.full_mode = engine::FullMode::kHashJoin;

  const std::string frame = EncodeQueryFrame(42, request);
  XK_ASSERT_OK_AND_ASSIGN(const FrameHead head,
                          DecodeFrameHead(PayloadOf(frame)));
  EXPECT_EQ(head.type, FrameType::kQuery);
  EXPECT_EQ(head.request_id, 42u);

  XK_ASSERT_OK_AND_ASSIGN(const QueryRequest decoded,
                          DecodeQueryBody(PayloadOf(frame)));
  EXPECT_EQ(decoded.keywords, request.keywords);
  EXPECT_EQ(decoded.decomposition, request.decomposition);
  EXPECT_EQ(decoded.mode, request.mode);
  EXPECT_EQ(decoded.deadline, request.deadline);
  EXPECT_EQ(decoded.cache_mode, request.cache_mode);
  EXPECT_EQ(decoded.options.max_size_z, request.options.max_size_z);
  EXPECT_EQ(decoded.options.per_network_k, request.options.per_network_k);
  EXPECT_EQ(decoded.options.global_k, request.options.global_k);
  EXPECT_EQ(decoded.options.vectorized, request.options.vectorized);
  EXPECT_EQ(decoded.options.intra_plan_threads,
            request.options.intra_plan_threads);
  EXPECT_EQ(decoded.options.anytime_cost_budget,
            request.options.anytime_cost_budget);
  EXPECT_EQ(decoded.options.full_mode, request.options.full_mode);
  // Defaults survive untouched.
  EXPECT_EQ(decoded.options.enable_subplan_reuse,
            request.options.enable_subplan_reuse);
  EXPECT_EQ(decoded.options.anytime_headroom, request.options.anytime_headroom);
}

TEST(WireTest, BatchAndFinalFrameRoundTrip) {
  const std::vector<present::Mtton> mttons = {
      MakeMtton(0, 1, {3, 5}),
      MakeMtton(2, 1, {7}),
      MakeMtton(1, 3, {9, 11, 13}),
  };
  const std::string batch = EncodeBatchFrame(9, mttons);
  XK_ASSERT_OK_AND_ASSIGN(const std::vector<present::Mtton> decoded_batch,
                          DecodeBatchBody(PayloadOf(batch)));
  EXPECT_EQ(decoded_batch, mttons);

  QueryResponse response;
  response.status = Status::DeadlineExceeded("deadline exceeded");
  response.mttons = mttons;
  response.completeness = Completeness::kDegraded;
  response.coverage.cns_executed = 4;
  response.coverage.cns_skipped = 2;
  response.coverage.exhausted_class = 1;
  response.coverage.interrupted = true;
  response.stats.probes.probes = 100;
  response.stats.results = 3;
  response.stats.subplan_hits = 5;

  // tail_start = 2: the final frame ships only the last result.
  const std::string final_frame = EncodeFinalFrame(9, response, 2);
  XK_ASSERT_OK_AND_ASSIGN(const FrameHead head,
                          DecodeFrameHead(PayloadOf(final_frame)));
  EXPECT_EQ(head.type, FrameType::kFinal);
  XK_ASSERT_OK_AND_ASSIGN(const FinalBody body,
                          DecodeFinalBody(PayloadOf(final_frame)));
  EXPECT_EQ(body.tail_start, 2u);
  ASSERT_EQ(body.response.mttons.size(), 1u);
  EXPECT_EQ(body.response.mttons[0], mttons[2]);
  EXPECT_TRUE(body.response.status.IsDeadlineExceeded());
  EXPECT_EQ(body.response.status.message(), "deadline exceeded");
  EXPECT_EQ(body.response.completeness, Completeness::kDegraded);
  EXPECT_EQ(body.response.coverage.cns_executed, 4u);
  EXPECT_EQ(body.response.coverage.cns_skipped, 2u);
  EXPECT_EQ(body.response.coverage.exhausted_class, 1);
  EXPECT_TRUE(body.response.coverage.interrupted);
  EXPECT_EQ(body.response.stats.probes.probes, 100u);
  EXPECT_EQ(body.response.stats.results, 3u);
  EXPECT_EQ(body.response.stats.subplan_hits, 5u);
}

TEST(WireTest, ErrorFrameRoundTrip) {
  const std::string frame =
      EncodeErrorFrame(7, Status::ResourceExhausted("queue full"));
  XK_ASSERT_OK_AND_ASSIGN(const FrameHead head,
                          DecodeFrameHead(PayloadOf(frame)));
  EXPECT_EQ(head.type, FrameType::kError);
  EXPECT_EQ(head.request_id, 7u);
  Status error;
  XK_ASSERT_OK(DecodeErrorBody(PayloadOf(frame), &error));
  EXPECT_TRUE(error.IsResourceExhausted());
  EXPECT_EQ(error.message(), "queue full");
}

TEST(WireTest, MalformedPayloadsRejected) {
  // Empty payload: no head.
  EXPECT_TRUE(DecodeFrameHead({}).status().IsCorruption());
  // Unknown frame type.
  std::vector<uint8_t> bogus(9, 0);
  bogus[0] = 99;
  EXPECT_TRUE(DecodeFrameHead(bogus).status().IsCorruption());
  // A query frame truncated mid-body.
  QueryRequest request;
  request.keywords = {"a", "b"};
  request.decomposition = "XKeyword";
  const std::string frame = EncodeQueryFrame(1, request);
  const auto payload = PayloadOf(frame);
  EXPECT_TRUE(
      DecodeQueryBody(payload.subspan(0, payload.size() - 5)).status()
          .IsCorruption());
  // Trailing garbage after a well-formed body.
  std::vector<uint8_t> padded(payload.begin(), payload.end());
  padded.push_back(0);
  EXPECT_TRUE(DecodeQueryBody(padded).status().IsCorruption());
}

// --- Server fixture --------------------------------------------------------

/// DBLP instance shared by every server test; sized like service_test's so
/// an unbounded naive query runs long enough to cancel mid-flight.
class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DblpConfig config;
    config.num_conferences = 8;
    config.years_per_conference = 5;
    config.avg_papers_per_year = 18;
    config.avg_citations_per_paper = 12.0;
    config.author_vocab = 150;
    config.title_vocab = 150;
    config.seed = 2003;
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe().release();
    xk_ = engine::XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe()
              .release();
    ASSERT_TRUE(xk_->AddDecomposition(
                       decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/6)
                           .MoveValueUnsafe())
                    .ok());
  }

  static void TearDownTestSuite() {
    delete xk_;
    xk_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  void StartServing(service::QueryServiceOptions service_options = {},
                    ServerOptions server_options = {}) {
    service_ = QueryService::Create(xk_, service_options).MoveValueUnsafe();
    server_ = Server::Start(service_.get(), server_options).MoveValueUnsafe();
  }

  Client MustConnect() {
    return Client::Connect(server_->port()).MoveValueUnsafe();
  }

  static QueryRequest Cheap(const std::vector<std::string>& keywords) {
    QueryRequest request;
    request.keywords = keywords;
    request.decomposition = "XKeyword";
    request.options.max_size_z = 4;
    request.options.per_network_k = 3;
    return request;
  }

  /// Long-running: the naive executor over the full network space.
  static QueryRequest Expensive() {
    QueryRequest request;
    request.keywords = {"gray", "codd"};
    request.decomposition = "XKeyword";
    request.mode = QueryMode::kNaive;
    request.options.max_size_z = 6;
    request.options.per_network_k = 1000000;
    return request;
  }

  /// Long-running top-k whose small size classes finish (and stream) early.
  static QueryRequest ExpensiveStreaming() {
    QueryRequest request = Expensive();
    request.mode = QueryMode::kTopK;
    return request;
  }

  template <typename Predicate>
  static bool SpinUntil(Predicate predicate,
                        milliseconds budget = milliseconds(10000)) {
    const auto give_up = std::chrono::steady_clock::now() + budget;
    while (!predicate()) {
      if (std::chrono::steady_clock::now() >= give_up) return false;
      std::this_thread::sleep_for(milliseconds(2));
    }
    return predicate();
  }

  static void ExpectSameResponse(const QueryResponse& streamed,
                                 const QueryResponse& direct) {
    EXPECT_EQ(streamed.status.code(), direct.status.code());
    EXPECT_EQ(streamed.completeness, direct.completeness);
    EXPECT_EQ(streamed.coverage.cns_executed, direct.coverage.cns_executed);
    EXPECT_EQ(streamed.coverage.cns_skipped, direct.coverage.cns_skipped);
    EXPECT_EQ(streamed.coverage.exhausted_class,
              direct.coverage.exhausted_class);
    EXPECT_EQ(streamed.stats.results, direct.stats.results);
    ASSERT_EQ(streamed.mttons.size(), direct.mttons.size());
    for (size_t i = 0; i < direct.mttons.size(); ++i) {
      EXPECT_EQ(streamed.mttons[i], direct.mttons[i]) << "result " << i;
    }
  }

  static datagen::DblpDatabase* db_;
  static engine::XKeyword* xk_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
};

datagen::DblpDatabase* NetTest::db_ = nullptr;
engine::XKeyword* NetTest::xk_ = nullptr;

// --- Differential matrix: streamed == in-process --------------------------

TEST_F(NetTest, StreamedResponsesMatchInProcessSubmit) {
  StartServing();
  Client client = MustConnect();

  std::vector<QueryRequest> matrix;
  for (QueryMode mode : {QueryMode::kTopK, QueryMode::kNaive, QueryMode::kAll}) {
    for (bool vectorized : {true, false}) {
      for (size_t global_k : {size_t{0}, size_t{7}}) {
        QueryRequest request;
        request.keywords = {"gray", "codd"};
        request.decomposition = "XKeyword";
        request.mode = mode;
        // Both sides execute for real: no cache, no coalescing.
        request.cache_mode = engine::CacheMode::kBypass;
        request.options.max_size_z = 5;
        request.options.per_network_k = 5;
        request.options.vectorized = vectorized;
        request.options.global_k = global_k;
        // Which results exist when the global-k early stop fires depends on
        // inter-plan scheduling (a slow cheap-class plan can lose the race to
        // pricier ones) — a pre-existing engine property, not a streaming
        // one. Two in-process runs diverge the same way, so the differential
        // pins global-k on the serial schedule, where it is deterministic.
        if (global_k != 0) request.options.num_threads = 1;
        matrix.push_back(request);
      }
    }
  }
  // Morsel-driven intra-plan parallelism and the cost-unordered legacy
  // schedule exercise the streamer's other hook sites.
  QueryRequest morsel = matrix[0];
  morsel.options.intra_plan_threads = 3;
  morsel.options.morsel_size = 8;
  matrix.push_back(morsel);
  QueryRequest legacy_order = matrix[0];
  legacy_order.options.cost_ordered_scheduling = false;
  matrix.push_back(legacy_order);
  QueryRequest no_reuse = matrix[0];
  no_reuse.options.enable_subplan_reuse = false;
  matrix.push_back(no_reuse);

  for (size_t i = 0; i < matrix.size(); ++i) {
    SCOPED_TRACE("combo " + std::to_string(i));
    std::vector<std::vector<present::Mtton>> batches;
    XK_ASSERT_OK_AND_ASSIGN(const QueryResponse streamed,
                            client.Run(matrix[i], &batches));
    XK_ASSERT_OK_AND_ASSIGN(service::QueryHandle handle,
                            service_->Submit(matrix[i]));
    XK_ASSERT_OK_AND_ASSIGN(const QueryResponse direct, handle.Wait());
    ExpectSameResponse(streamed, direct);
    // Client::Run already checked concat(batches) is the response prefix via
    // the final frame's tail_start; spot-check the batch bookkeeping here.
    size_t streamed_results = 0;
    for (const auto& b : batches) streamed_results += b.size();
    EXPECT_LE(streamed_results, streamed.mttons.size());
  }

  const MetricsSnapshot snap = service_->metrics().Snapshot();
  EXPECT_EQ(snap.malformed_frames, 0u);
  EXPECT_EQ(snap.client_aborts, 0u);
  EXPECT_EQ(snap.peak_connections, 1);
}

TEST_F(NetTest, TopKStreamsBatchesAheadOfFinalFrame) {
  StartServing();
  Client client = MustConnect();
  // Unbounded top-k over every size class: small classes finalize (and
  // stream) while larger ones still run.
  QueryRequest request = ExpensiveStreaming();
  request.cache_mode = engine::CacheMode::kBypass;
  std::vector<std::vector<present::Mtton>> batches;
  XK_ASSERT_OK_AND_ASSIGN(const QueryResponse response,
                          client.Run(request, &batches));
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_FALSE(batches.empty());
  size_t streamed = 0;
  for (const auto& b : batches) {
    EXPECT_FALSE(b.empty());
    streamed += b.size();
  }
  EXPECT_GT(streamed, 0u);
  EXPECT_LE(streamed, response.mttons.size());

  const MetricsSnapshot snap = service_->metrics().Snapshot();
  EXPECT_GE(snap.streamed_batches, batches.size());
  EXPECT_GE(snap.streamed_results, streamed);
  EXPECT_GT(snap.streamed_bytes, 0u);
}

TEST_F(NetTest, SequentialQueriesShareOneConnection) {
  StartServing();
  Client client = MustConnect();
  for (const auto& keywords : std::vector<std::vector<std::string>>{
           {"gray", "codd"}, {"sigmod"}, {"gray", "codd"}}) {
    QueryRequest request = Cheap(keywords);
    XK_ASSERT_OK_AND_ASSIGN(const QueryResponse streamed, client.Run(request));
    XK_ASSERT_OK_AND_ASSIGN(service::QueryHandle handle,
                            service_->Submit(request));
    XK_ASSERT_OK_AND_ASSIGN(const QueryResponse direct, handle.Wait());
    ExpectSameResponse(streamed, direct);
  }
  // The third request hit the answer cache (populated by the first): served
  // whole through the final frame, still byte-identical.
  EXPECT_GE(service_->metrics().cache_hits(), 1u);
}

// --- Cancellation paths ----------------------------------------------------

TEST_F(NetTest, CancelFrameStopsServerQuery) {
  StartServing();
  Client client = MustConnect();
  XK_ASSERT_OK_AND_ASSIGN(const uint64_t request_id,
                          client.SendQuery(Expensive()));
  ASSERT_TRUE(SpinUntil([&] { return service_->metrics().in_flight() == 1; }));
  XK_ASSERT_OK(client.SendCancel(request_id));

  // The final frame arrives with the cancelled outcome and whatever partial
  // results the executor had.
  while (true) {
    XK_ASSERT_OK_AND_ASSIGN(const Client::Event event, client.ReadEvent());
    if (event.kind == Client::Event::Kind::kBatch) continue;
    ASSERT_EQ(event.kind, Client::Event::Kind::kFinal);
    EXPECT_EQ(event.request_id, request_id);
    EXPECT_TRUE(event.response.status.IsCancelled())
        << event.response.status.ToString();
    EXPECT_NE(event.response.completeness, Completeness::kComplete);
    break;
  }
  // The worker is free again; the connection keeps serving.
  ASSERT_TRUE(SpinUntil([&] { return service_->metrics().in_flight() == 0; }));
  XK_ASSERT_OK_AND_ASSIGN(const QueryResponse after,
                          client.Run(Cheap({"gray", "codd"})));
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(service_->metrics().client_aborts(), 0u);
}

TEST_F(NetTest, ClientDisconnectMidQueryCancelsServerSide) {
  StartServing();
  {
    Client client = MustConnect();
    XK_ASSERT_OK(client.SendQuery(Expensive()).status());
    ASSERT_TRUE(
        SpinUntil([&] { return service_->metrics().in_flight() == 1; }));
    // Hang up with the query running: destroying the client severs the
    // connection without reading a single response frame.
  }
  // The reader's EOF turns into a cooperative cancel: the worker frees up
  // (no leaked in-flight query) and the abort is counted.
  ASSERT_TRUE(SpinUntil([&] {
    const MetricsSnapshot snap = service_->metrics().Snapshot();
    return snap.client_aborts == 1 && snap.in_flight == 0 &&
           snap.cancelled >= 1 && snap.active_connections == 0;
  }));
  // The service survives to serve the next connection.
  Client again = MustConnect();
  XK_ASSERT_OK_AND_ASSIGN(const QueryResponse response,
                          again.Run(Cheap({"gray", "codd"})));
  EXPECT_TRUE(response.status.ok());
}

TEST_F(NetTest, ClientDisconnectMidStreamCancelsServerSide) {
  StartServing();
  {
    Client client = MustConnect();
    QueryRequest request = ExpensiveStreaming();
    request.cache_mode = engine::CacheMode::kBypass;
    XK_ASSERT_OK(client.SendQuery(request).status());
    // Wait for the first streamed batch — proof the query is mid-stream —
    // then vanish without reading the rest.
    XK_ASSERT_OK_AND_ASSIGN(const Client::Event event, client.ReadEvent());
    ASSERT_EQ(event.kind, Client::Event::Kind::kBatch);
    EXPECT_FALSE(event.batch.empty());
  }
  ASSERT_TRUE(SpinUntil([&] {
    const MetricsSnapshot snap = service_->metrics().Snapshot();
    return snap.client_aborts == 1 && snap.in_flight == 0 &&
           snap.active_connections == 0;
  }));
  const MetricsSnapshot snap = service_->metrics().Snapshot();
  // The abandoned query finished degraded-or-cancelled, never complete.
  EXPECT_GE(snap.cancelled, 1u);
  EXPECT_GT(snap.streamed_results, 0u);
}

// --- Protocol robustness ---------------------------------------------------

TEST_F(NetTest, SecondQueryWhileInFlightIsRejected) {
  StartServing();
  Client client = MustConnect();
  XK_ASSERT_OK_AND_ASSIGN(const uint64_t first, client.SendQuery(Expensive()));
  ASSERT_TRUE(SpinUntil([&] { return service_->metrics().in_flight() == 1; }));
  XK_ASSERT_OK_AND_ASSIGN(const uint64_t second,
                          client.SendQuery(Cheap({"sigmod"})));

  bool saw_rejection = false;
  bool saw_final = false;
  XK_ASSERT_OK(client.SendCancel(first));
  while (!saw_rejection || !saw_final) {
    XK_ASSERT_OK_AND_ASSIGN(const Client::Event event, client.ReadEvent());
    if (event.kind == Client::Event::Kind::kError) {
      EXPECT_EQ(event.request_id, second);
      EXPECT_TRUE(event.error.IsResourceExhausted())
          << event.error.ToString();
      saw_rejection = true;
    } else if (event.kind == Client::Event::Kind::kFinal) {
      EXPECT_EQ(event.request_id, first);
      saw_final = true;
    }
  }
  // The connection survives the rejection.
  XK_ASSERT_OK_AND_ASSIGN(const QueryResponse after,
                          client.Run(Cheap({"gray", "codd"})));
  EXPECT_TRUE(after.status.ok());
}

/// Raw-socket helper for protocol-violation tests: Client refuses to send
/// malformed bytes, so speak to the port directly.
int RawConnect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)),
            0);
  return fd;
}

TEST_F(NetTest, OversizedFramePrefixRejectedCleanly) {
  ServerOptions server_options;
  server_options.max_frame_bytes = 1 << 16;
  StartServing({}, server_options);
  const int fd = RawConnect(server_->port());
  // Length prefix far beyond the configured bound; the server must reject
  // it before allocating, answer kError, and close.
  const uint32_t huge = (1u << 20);
  ASSERT_TRUE(WriteAll(fd, &huge, sizeof(huge)).ok());
  std::vector<uint8_t> payload;
  XK_ASSERT_OK(ReadFrame(fd, &payload));
  XK_ASSERT_OK_AND_ASSIGN(const FrameHead head, DecodeFrameHead(payload));
  EXPECT_EQ(head.type, FrameType::kError);
  EXPECT_EQ(head.request_id, 0u);  // connection-level fault
  Status error;
  XK_ASSERT_OK(DecodeErrorBody(payload, &error));
  EXPECT_TRUE(error.IsCorruption()) << error.ToString();
  // Then EOF: the server closed the connection.
  EXPECT_TRUE(ReadFrame(fd, &payload).IsAborted());
  close(fd);
  ASSERT_TRUE(SpinUntil([&] {
    return service_->metrics().Snapshot().active_connections == 0;
  }));
  EXPECT_EQ(service_->metrics().Snapshot().malformed_frames, 1u);
}

TEST_F(NetTest, GarbageQueryBodyRejectedCleanly) {
  StartServing();
  const int fd = RawConnect(server_->port());
  // Well-framed but undecodable: a kQuery head followed by garbage.
  std::string frame;
  const uint32_t length = 9 + 4;
  frame.append(reinterpret_cast<const char*>(&length), 4);
  frame.push_back(static_cast<char>(FrameType::kQuery));
  const uint64_t request_id = 5;
  frame.append(reinterpret_cast<const char*>(&request_id), 8);
  const uint32_t bogus_keyword_count = 0xffffffff;
  frame.append(reinterpret_cast<const char*>(&bogus_keyword_count), 4);
  ASSERT_TRUE(WriteAll(fd, frame.data(), frame.size()).ok());

  std::vector<uint8_t> payload;
  XK_ASSERT_OK(ReadFrame(fd, &payload));
  XK_ASSERT_OK_AND_ASSIGN(const FrameHead head, DecodeFrameHead(payload));
  EXPECT_EQ(head.type, FrameType::kError);
  EXPECT_EQ(head.request_id, 5u);  // echoed from the rejected query
  EXPECT_TRUE(ReadFrame(fd, &payload).IsAborted());
  close(fd);
  ASSERT_TRUE(SpinUntil([&] {
    return service_->metrics().Snapshot().active_connections == 0;
  }));
  EXPECT_EQ(service_->metrics().Snapshot().malformed_frames, 1u);
  // No query ever started, so nothing was cancelled or leaked.
  EXPECT_EQ(service_->metrics().in_flight(), 0);
}

TEST_F(NetTest, ServerStopSeversLiveConnections) {
  StartServing();
  Client idle = MustConnect();
  Client busy = MustConnect();
  XK_ASSERT_OK(busy.SendQuery(Expensive()).status());
  ASSERT_TRUE(SpinUntil([&] { return service_->metrics().in_flight() == 1; }));
  ASSERT_TRUE(SpinUntil([&] {
    return service_->metrics().Snapshot().active_connections == 2;
  }));

  server_->Stop();  // joins every connection thread
  // The in-flight query was cancelled through the abort path; the clients
  // observe EOF.
  ASSERT_TRUE(SpinUntil([&] {
    const MetricsSnapshot snap = service_->metrics().Snapshot();
    return snap.in_flight == 0 && snap.active_connections == 0;
  }));
  EXPECT_TRUE(idle.ReadEvent().status().IsAborted());
  EXPECT_EQ(service_->metrics().Snapshot().peak_connections, 2);
}

}  // namespace
}  // namespace xk::net
