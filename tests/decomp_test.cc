// Tests for the decomposition module: classification (Theorem 5.3 and the
// 4NF/inlined/MVD split, pinned to every worked example in Section 5),
// useless-fragment rules, enumeration, coverage, and the Figure-12 algorithm.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "decomp/classify.h"
#include "decomp/coverage.h"
#include "decomp/decomposition.h"
#include "decomp/enumerate.h"
#include "decomp/relation_builder.h"
#include "schema/decomposer.h"
#include "schema/validator.h"
#include "test_util.h"

namespace xk::decomp {
namespace {

using schema::TssTree;
using schema::TssTreeEdge;

class DecompTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tss_ = datagen::BuildTpchSchema(&schema_).MoveValueUnsafe();
  }

  schema::TssId Seg(const char* name) { return *tss_->SegmentByName(name); }
  schema::TssEdgeId E(const char* from, const char* to) {
    return *tss_->FindEdge(Seg(from), Seg(to));
  }

  /// Builds a tree from (from_seg, to_seg) node indexes over named edges.
  TssTree Tree(std::vector<const char*> segs,
               std::vector<std::tuple<int, int, const char*, const char*>> edges) {
    TssTree t;
    for (const char* s : segs) t.nodes.push_back(Seg(s));
    for (auto& [from, to, sf, st] : edges) {
      t.edges.push_back(TssTreeEdge{from, to, E(sf, st)});
    }
    return t;
  }

  schema::SchemaGraph schema_;
  std::unique_ptr<schema::TssGraph> tss_;
};

// --- Classification: every worked example from the paper -------------------

TEST_F(DecompTest, SingleEdgeFragmentsAre4NF) {
  // "Connection relations that correspond to a single edge ... by definition
  // are always in 4NF."
  for (schema::TssEdgeId e = 0; e < tss_->NumEdges(); ++e) {
    TssTree t;
    t.nodes = {tss_->edge(e).from, tss_->edge(e).to};
    t.edges = {TssTreeEdge{0, 1, e}};
    EXPECT_EQ(Classify(t, *tss_), FragmentClass::k4NF)
        << tss_->name(tss_->edge(e).from) << "->" << tss_->name(tss_->edge(e).to);
  }
}

TEST_F(DecompTest, PolIsInlined) {
  // POL (person-order-lineitem): FDs L->O->P but O is no key -> inlined.
  TssTree pol = Tree({"P", "O", "L"}, {{0, 1, "P", "O"}, {1, 2, "O", "L"}});
  EXPECT_EQ(Classify(pol, *tss_), FragmentClass::kInlined);
}

TEST_F(DecompTest, OlpaIs4NF) {
  // OLPa (Figure 9): L is a key (one order, one part per lineitem) -> 4NF.
  TssTree olpa = Tree({"O", "L", "Pa"}, {{0, 1, "O", "L"}, {1, 2, "L", "Pa"}});
  EXPECT_EQ(Classify(olpa, *tss_), FragmentClass::k4NF);
}

TEST_F(DecompTest, SpoIsMvd) {
  // SPO (Figure 11): person with independent service calls and orders.
  TssTree spo = Tree({"S", "P", "O"}, {{1, 0, "P", "S"}, {1, 2, "P", "O"}});
  EXPECT_EQ(Classify(spo, *tss_), FragmentClass::kMVD);
}

TEST_F(DecompTest, PaLolpaIsMvd) {
  // PaLOLPa (Figure 10): O with two independent lineitem branches.
  TssTree t = Tree({"Pa", "L", "O", "L", "Pa"},
                   {{1, 0, "L", "Pa"},
                    {2, 1, "O", "L"},
                    {2, 3, "O", "L"},
                    {3, 4, "L", "Pa"}});
  EXPECT_EQ(Classify(t, *tss_), FragmentClass::kMVD);
}

TEST_F(DecompTest, PartChainIsMvdAtTheMiddle) {
  // Pa -> Pa -> Pa: the middle part has independent super- and sub-parts?
  // No: middle's outward edges are (up: many, down: many) -> MVD.
  TssTree t = Tree({"Pa", "Pa", "Pa"}, {{0, 1, "Pa", "Pa"}, {1, 2, "Pa", "Pa"}});
  EXPECT_EQ(Classify(t, *tss_), FragmentClass::kMVD);
}

TEST_F(DecompTest, LineitemStarIs4NF) {
  // P <- L -> Pa: lineitem determines both its supplier and its part.
  TssTree t = Tree({"P", "L", "Pa"}, {{1, 0, "L", "P"}, {1, 2, "L", "Pa"}});
  EXPECT_EQ(Classify(t, *tss_), FragmentClass::k4NF);
}

TEST_F(DecompTest, KeyOccurrenceDetection) {
  TssTree olpa = Tree({"O", "L", "Pa"}, {{0, 1, "O", "L"}, {1, 2, "L", "Pa"}});
  EXPECT_FALSE(IsKeyOccurrence(olpa, *tss_, 0));  // O fans out to many L
  EXPECT_TRUE(IsKeyOccurrence(olpa, *tss_, 1));   // L determines O and Pa
  EXPECT_FALSE(IsKeyOccurrence(olpa, *tss_, 2));  // Pa referenced by many L
}

// --- Useless fragments ------------------------------------------------------

TEST_F(DecompTest, UselessChoiceFragment) {
  // "The fragment PaLPr is useless since line is a choice".
  TssTree t = Tree({"Pa", "L", "Pr"}, {{1, 0, "L", "Pa"}, {1, 2, "L", "Pr"}});
  EXPECT_TRUE(IsUseless(t, *tss_));
}

TEST_F(DecompTest, UselessTwoContainmentParents) {
  // P -> O <- P.
  TssTree t = Tree({"P", "O", "P"}, {{0, 1, "P", "O"}, {2, 1, "P", "O"}});
  EXPECT_TRUE(IsUseless(t, *tss_));
}

TEST_F(DecompTest, UsefulReferenceSharing) {
  // L -> P <- L (two lineitems supplied by one person) IS possible: the
  // reverse side of a reference edge is to-many.
  TssTree t = Tree({"L", "P", "L"}, {{0, 1, "L", "P"}, {2, 1, "L", "P"}});
  EXPECT_FALSE(IsUseless(t, *tss_));
}

// --- Enumeration ------------------------------------------------------------

TEST_F(DecompTest, EnumerateSizeOneMatchesEdges) {
  EnumerateOptions opts;
  opts.max_size = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<TssTree> trees, EnumerateTrees(*tss_, opts));
  EXPECT_EQ(trees.size(), static_cast<size_t>(tss_->NumEdges()));
  for (const TssTree& t : trees) XK_EXPECT_OK(t.Validate(*tss_));
}

TEST_F(DecompTest, EnumerateDeduplicatesAndFiltersImpossible) {
  EnumerateOptions opts;
  opts.max_size = 2;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<TssTree> trees, EnumerateTrees(*tss_, opts));
  std::set<std::string> keys;
  for (const TssTree& t : trees) {
    EXPECT_TRUE(keys.insert(schema::CanonicalKey(t, *tss_)).second);
    EXPECT_TRUE(schema::IsStructurallyPossible(t, *tss_));
    EXPECT_LE(t.size(), 2);
  }
  // Unfolded trees (Pa-Pa-Pa) are present.
  TssTree chain = Tree({"Pa", "Pa", "Pa"}, {{0, 1, "Pa", "Pa"}, {1, 2, "Pa", "Pa"}});
  EXPECT_TRUE(keys.contains(schema::CanonicalKey(chain, *tss_)));
  // The useless choice fork is not.
  TssTree fork = Tree({"Pa", "L", "Pr"}, {{1, 0, "L", "Pa"}, {1, 2, "L", "Pr"}});
  EXPECT_FALSE(keys.contains(schema::CanonicalKey(fork, *tss_)));
}

TEST_F(DecompTest, EnumerateIncludeEmptyAddsSingletons) {
  EnumerateOptions opts;
  opts.max_size = 0;
  opts.include_empty = true;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<TssTree> trees, EnumerateTrees(*tss_, opts));
  EXPECT_EQ(trees.size(), static_cast<size_t>(tss_->NumSegments()));
}

TEST_F(DecompTest, EnumerateRespectsResourceCap) {
  EnumerateOptions opts;
  opts.max_size = 6;
  opts.max_trees = 10;
  EXPECT_TRUE(EnumerateTrees(*tss_, opts).status().IsResourceExhausted());
}

// --- Coverage / tiling ------------------------------------------------------

TEST_F(DecompTest, EmbeddingsFindAllOccurrenceMappings) {
  // The single-edge PaPa fragment embeds into the Pa-Pa-Pa chain twice.
  TssTree frag = Tree({"Pa", "Pa"}, {{0, 1, "Pa", "Pa"}}) ;
  TssTree chain = Tree({"Pa", "Pa", "Pa"}, {{0, 1, "Pa", "Pa"}, {1, 2, "Pa", "Pa"}});
  std::vector<Embedding> embeddings = FindEmbeddings(frag, chain, *tss_, 0);
  EXPECT_EQ(embeddings.size(), 2u);
  // Orientation matters: no embedding maps the edge backwards.
  for (const Embedding& e : embeddings) {
    EXPECT_EQ(__builtin_popcount(e.edge_mask), 1);
  }
}

TEST_F(DecompTest, MinJoinTilingPrefersBigFragments) {
  // Example 5.1: CTSSN4 Pr <- L -> ... with the OLPa fragment the network
  // O-L-Pa needs zero joins; with only single edges it needs one.
  TssTree olpa_net = Tree({"O", "L", "Pa"}, {{0, 1, "O", "L"}, {1, 2, "L", "Pa"}});

  Decomposition minimal =
      MakeMinimal(*tss_, PhysicalDesign::kClusterPerDirection);
  std::optional<Tiling> t1 = MinJoinTiling(olpa_net, *tss_, minimal.fragments);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->joins(), 1);

  Fragment olpa;
  olpa.tree = olpa_net;
  olpa.name = MakeFragmentName(olpa.tree, *tss_);
  std::vector<Fragment> with_big = minimal.fragments;
  with_big.push_back(olpa);
  std::optional<Tiling> t2 = MinJoinTiling(olpa_net, *tss_, with_big);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->joins(), 0);
}

TEST_F(DecompTest, TilingOfEmptyNetworkIsEmpty) {
  TssTree single;
  single.nodes = {Seg("P")};
  std::optional<Tiling> t = MinJoinTiling(single, *tss_, {});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->joins(), 0);
  EXPECT_TRUE(t->pieces.empty());
}

TEST_F(DecompTest, UncoverableNetworkReturnsNullopt) {
  TssTree net = Tree({"P", "O"}, {{0, 1, "P", "O"}});
  EXPECT_FALSE(MinJoinTiling(net, *tss_, {}).has_value());
  EXPECT_FALSE(Covered(net, *tss_, {}, 5));
}

// --- Decomposition policies -------------------------------------------------

TEST_F(DecompTest, FragmentSizeBoundTheorem51) {
  EXPECT_EQ(FragmentSizeBound(6, 2), 2);   // L = ceil(6/3)
  EXPECT_EQ(FragmentSizeBound(6, 0), 6);   // maximal: zero joins
  EXPECT_EQ(FragmentSizeBound(6, 5), 1);   // minimal
  EXPECT_EQ(FragmentSizeBound(7, 2), 3);   // ceil(7/3)
}

TEST_F(DecompTest, MinimalCoversEveryEdgeOnce) {
  Decomposition d = MakeMinimal(*tss_, PhysicalDesign::kHashIndexPerColumn);
  EXPECT_EQ(d.name, "MinNClustIndx");
  EXPECT_EQ(d.fragments.size(), static_cast<size_t>(tss_->NumEdges()));
  for (const Fragment& f : d.fragments) EXPECT_EQ(f.size(), 1);
}

TEST_F(DecompTest, XKeywordDecompositionMeetsJoinBound) {
  const int B = 1;
  const int M = 4;
  XK_ASSERT_OK_AND_ASSIGN(Decomposition d, MakeXKeyword(*tss_, B, M));
  // Every possible network of size <= M is evaluable within B joins.
  EnumerateOptions opts;
  opts.max_size = M;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<TssTree> networks, EnumerateTrees(*tss_, opts));
  for (const TssTree& net : networks) {
    EXPECT_TRUE(Covered(net, *tss_, d.fragments, B)) << net.ToString(*tss_);
  }
}

TEST_F(DecompTest, XKeywordPrefersNonMvdFragments) {
  XK_ASSERT_OK_AND_ASSIGN(Decomposition d, MakeXKeyword(*tss_, 1, 4));
  size_t mvd = 0;
  for (const Fragment& f : d.fragments) {
    if (Classify(f, *tss_) == FragmentClass::kMVD) ++mvd;
  }
  // Some MVD fragments may be unavoidable, but the bulk must be non-MVD.
  EXPECT_LT(mvd, d.fragments.size() / 2);
}

TEST_F(DecompTest, CompleteContainsAllUsefulFragmentsOfSizeL) {
  XK_ASSERT_OK_AND_ASSIGN(Decomposition d, MakeComplete(*tss_, 2));
  EnumerateOptions opts;
  opts.max_size = 2;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<TssTree> trees, EnumerateTrees(*tss_, opts));
  EXPECT_EQ(d.fragments.size(), trees.size());
}

TEST_F(DecompTest, CombineDeduplicates) {
  Decomposition a = MakeMinimal(*tss_, PhysicalDesign::kClusterPerDirection);
  XK_ASSERT_OK_AND_ASSIGN(Decomposition b, MakeXKeyword(*tss_, 2, 4));
  Decomposition c = Combine(a, b, *tss_, "combination");
  EXPECT_EQ(c.name, "combination");
  // All of a's single edges are already inside b (step 1 of Figure 12).
  EXPECT_EQ(c.fragments.size(), b.fragments.size());
}

TEST_F(DecompTest, FindFragmentMatchesCanonically) {
  Decomposition d = MakeMinimal(*tss_, PhysicalDesign::kClusterPerDirection);
  TssTree edge = Tree({"P", "O"}, {{0, 1, "P", "O"}});
  EXPECT_GE(d.FindFragment(edge, *tss_), 0);
  TssTree pol = Tree({"P", "O", "L"}, {{0, 1, "P", "O"}, {1, 2, "O", "L"}});
  EXPECT_EQ(d.FindFragment(pol, *tss_), -1);
}

// --- Relation builder --------------------------------------------------------

TEST_F(DecompTest, ConnectionRelationsMaterializeInstances) {
  auto db = testing::MakeFigure1Database();
  auto validation = schema::Validate(db->graph, db->schema).MoveValueUnsafe();
  schema::Decomposer decomposer(&db->graph, &validation, db->tss.get());
  auto objects = decomposer.Run().MoveValueUnsafe();

  Decomposition d = MakeMinimal(*db->tss, PhysicalDesign::kClusterPerDirection);
  storage::Catalog catalog;
  XK_ASSERT_OK(BuildConnectionRelations(d, objects, *db->tss, &catalog));
  EXPECT_EQ(catalog.NumTables(), d.fragments.size());

  // The Pa-Pa relation has exactly the 2 sub-part connections.
  int papa_index = d.FindFragment(
      TssTree{{*db->tss->SegmentByName("Pa"), *db->tss->SegmentByName("Pa")},
              {TssTreeEdge{0, 1, *db->tss->FindEdge(*db->tss->SegmentByName("Pa"),
                                                    *db->tss->SegmentByName("Pa"))}}},
      *db->tss);
  ASSERT_GE(papa_index, 0);
  XK_ASSERT_OK_AND_ASSIGN(
      const storage::Table* papa,
      std::as_const(catalog).GetTable(
          RelationName(d, d.fragments[static_cast<size_t>(papa_index)])));
  EXPECT_EQ(papa->NumRows(), 2u);
  EXPECT_TRUE(papa->frozen());
  EXPECT_TRUE(papa->IsClustered());
}

TEST_F(DecompTest, PhysicalDesignsApplied) {
  auto db = testing::MakeFigure1Database();
  auto validation = schema::Validate(db->graph, db->schema).MoveValueUnsafe();
  schema::Decomposer decomposer(&db->graph, &validation, db->tss.get());
  auto objects = decomposer.Run().MoveValueUnsafe();

  storage::Catalog catalog;
  Decomposition hash = MakeMinimal(*db->tss, PhysicalDesign::kHashIndexPerColumn);
  Decomposition none =
      MakeMinimal(*db->tss, PhysicalDesign::kNone, /*use_indexes_at_runtime=*/false);
  XK_ASSERT_OK(BuildConnectionRelations(hash, objects, *db->tss, &catalog));
  XK_ASSERT_OK(BuildConnectionRelations(none, objects, *db->tss, &catalog));

  XK_ASSERT_OK_AND_ASSIGN(const storage::Table* h,
                          std::as_const(catalog).GetTable(
                              RelationName(hash, hash.fragments[0])));
  EXPECT_NE(h->GetHashIndex(0), nullptr);
  EXPECT_FALSE(h->IsClustered());

  XK_ASSERT_OK_AND_ASSIGN(const storage::Table* no_idx,
                          std::as_const(catalog).GetTable(
                              RelationName(none, none.fragments[0])));
  EXPECT_FALSE(no_idx->HasAnyIndex());
  EXPECT_FALSE(no_idx->IsClustered());
}

}  // namespace
}  // namespace xk::decomp
