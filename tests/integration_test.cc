// End-to-end tests of the whole pipeline on the paper's running example
// (Figure 1) — the "John, VCR" and "US, VCR" queries of Sections 1 and 3.

#include <gtest/gtest.h>

#include "engine/xkeyword.h"
#include "test_util.h"

namespace xk {
namespace {

using engine::QueryOptions;
using engine::XKeyword;
using present::Mtton;
using testing::Figure1Database;
using testing::MakeFigure1Database;
using testing::RunAll;
using testing::RunNaive;
using testing::RunTopK;

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeFigure1Database();
    auto loaded = XKeyword::Load(&db_->graph, &db_->schema, db_->tss.get());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    xk_ = loaded.MoveValueUnsafe();
    XK_ASSERT_OK(xk_->AddDecomposition(decomp::MakeMinimal(
        *db_->tss, decomp::PhysicalDesign::kClusterPerDirection)));
  }

  std::unique_ptr<Figure1Database> db_;
  std::unique_ptr<XKeyword> xk_;
};

TEST_F(Figure1Test, LoadBuildsObjectsAndIndex) {
  // Target objects: 4 parts + 1 product + 2 persons + 1 service call +
  // 2 orders + 3 lineitems = 13.
  EXPECT_EQ(xk_->objects().NumObjects(), 13);
  // Master index knows the running keywords.
  EXPECT_TRUE(xk_->master_index().Contains("john"));
  EXPECT_TRUE(xk_->master_index().Contains("VCR"));   // case-insensitive
  EXPECT_TRUE(xk_->master_index().Contains("dvd"));
  EXPECT_FALSE(xk_->master_index().Contains("zzz"));
}

TEST_F(Figure1Test, JohnVcrFindsBothPaperResults) {
  QueryOptions options;
  options.max_size_z = 8;
  options.per_network_k = 100;
  engine::ExecutionStats stats;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          RunTopK(*xk_, {"john", "vcr"}, "MinClust", options, &stats));
  ASSERT_FALSE(results.empty());

  // The best result (size 6) connects John to the "set of VCR and DVD"
  // product through the lineitem he supplies.
  EXPECT_EQ(results.front().score, 6);
  storage::ObjectId john_obj = xk_->objects().ObjectOfNode(db_->john);
  storage::ObjectId product_obj = xk_->objects().ObjectOfNode(db_->product);
  const Mtton& best = results.front();
  EXPECT_NE(std::find(best.objects.begin(), best.objects.end(), john_obj),
            best.objects.end());
  EXPECT_NE(std::find(best.objects.begin(), best.objects.end(), product_obj),
            best.objects.end());

  // A size-8 result through TV's VCR sub-parts also exists.
  storage::ObjectId vcr1 = xk_->objects().ObjectOfNode(db_->vcr_part1);
  bool found_subpart_result = false;
  for (const Mtton& m : results) {
    if (m.score == 8 &&
        std::find(m.objects.begin(), m.objects.end(), vcr1) != m.objects.end() &&
        std::find(m.objects.begin(), m.objects.end(), john_obj) !=
            m.objects.end()) {
      found_subpart_result = true;
      break;
    }
  }
  EXPECT_TRUE(found_subpart_result);
}

TEST_F(Figure1Test, ResultsSortedByScore) {
  QueryOptions options;
  options.max_size_z = 8;
  options.per_network_k = 50;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          RunTopK(*xk_, {"john", "vcr"}, "MinClust", options));
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].score, results[i].score);
  }
}

TEST_F(Figure1Test, NaiveAndCachedAgree) {
  QueryOptions options;
  options.max_size_z = 8;
  options.per_network_k = 1000;
  options.num_threads = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> cached,
                          RunTopK(*xk_, {"john", "vcr"}, "MinClust", options));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> naive,
                          RunNaive(*xk_, {"john", "vcr"}, "MinClust", options));
  EXPECT_EQ(cached, naive);
}

TEST_F(Figure1Test, FullExecutorMatchesTopKWithLargeK) {
  QueryOptions options;
  options.max_size_z = 6;
  options.per_network_k = 1000000;
  options.num_threads = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> topk,
                          RunTopK(*xk_, {"us", "vcr"}, "MinClust", options));
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> full,
                          RunAll(*xk_, {"us", "vcr"}, "MinClust", options));
  EXPECT_EQ(topk, full);
}

TEST_F(Figure1Test, MissingKeywordYieldsNoResults) {
  QueryOptions options;
  options.max_size_z = 6;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          RunTopK(*xk_, {"john", "nosuchword"}, "MinClust", options));
  EXPECT_TRUE(results.empty());
}

TEST_F(Figure1Test, SingleKeywordSingleObjectResults) {
  QueryOptions options;
  options.max_size_z = 4;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          RunTopK(*xk_, {"mike"}, "MinClust", options));
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results.front().score, 0);
  EXPECT_EQ(results.front().objects.size(), 1u);
  EXPECT_EQ(results.front().objects[0], xk_->objects().ObjectOfNode(db_->mike));
}

TEST_F(Figure1Test, UsVcrHasMultivaluedFamilyOfResults) {
  // Figure 2: p1 supplies l1, l2; both reference TV whose sub-parts are two
  // VCRs -> the P-L-Pa-Pa network yields 4 combinations N1..N4.
  QueryOptions options;
  options.max_size_z = 8;
  options.per_network_k = 1000;
  options.num_threads = 1;
  XK_ASSERT_OK_AND_ASSIGN(std::vector<Mtton> results,
                          RunTopK(*xk_, {"us", "vcr"}, "MinClust", options));
  storage::ObjectId tv = xk_->objects().ObjectOfNode(db_->tv_part);
  storage::ObjectId john_obj = xk_->objects().ObjectOfNode(db_->john);
  int family = 0;
  for (const Mtton& m : results) {
    if (std::find(m.objects.begin(), m.objects.end(), tv) != m.objects.end() &&
        std::find(m.objects.begin(), m.objects.end(), john_obj) !=
            m.objects.end()) {
      ++family;
    }
  }
  // At least the four N1..N4 combinations (two lineitems x two VCR subparts).
  EXPECT_GE(family, 4);
}

}  // namespace
}  // namespace xk
