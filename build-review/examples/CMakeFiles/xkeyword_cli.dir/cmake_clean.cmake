file(REMOVE_RECURSE
  "CMakeFiles/xkeyword_cli.dir/xkeyword_cli.cpp.o"
  "CMakeFiles/xkeyword_cli.dir/xkeyword_cli.cpp.o.d"
  "xkeyword_cli"
  "xkeyword_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xkeyword_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
