# Empty compiler generated dependencies file for xkeyword_cli.
# This may be replaced when dependencies are built.
