file(REMOVE_RECURSE
  "CMakeFiles/interactive_presentation.dir/interactive_presentation.cpp.o"
  "CMakeFiles/interactive_presentation.dir/interactive_presentation.cpp.o.d"
  "interactive_presentation"
  "interactive_presentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_presentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
