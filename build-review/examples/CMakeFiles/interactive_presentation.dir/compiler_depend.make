# Empty compiler generated dependencies file for interactive_presentation.
# This may be replaced when dependencies are built.
