file(REMOVE_RECURSE
  "CMakeFiles/tpch_proximity.dir/tpch_proximity.cpp.o"
  "CMakeFiles/tpch_proximity.dir/tpch_proximity.cpp.o.d"
  "tpch_proximity"
  "tpch_proximity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
