# Empty compiler generated dependencies file for tpch_proximity.
# This may be replaced when dependencies are built.
