# Empty compiler generated dependencies file for dblp_search.
# This may be replaced when dependencies are built.
