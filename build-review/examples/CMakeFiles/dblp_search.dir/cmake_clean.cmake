file(REMOVE_RECURSE
  "CMakeFiles/dblp_search.dir/dblp_search.cpp.o"
  "CMakeFiles/dblp_search.dir/dblp_search.cpp.o.d"
  "dblp_search"
  "dblp_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
