# Empty dependencies file for cn_test.
# This may be replaced when dependencies are built.
