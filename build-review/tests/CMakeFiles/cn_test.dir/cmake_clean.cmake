file(REMOVE_RECURSE
  "CMakeFiles/cn_test.dir/cn_test.cc.o"
  "CMakeFiles/cn_test.dir/cn_test.cc.o.d"
  "cn_test"
  "cn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
