file(REMOVE_RECURSE
  "CMakeFiles/topk_executor_test.dir/topk_executor_test.cc.o"
  "CMakeFiles/topk_executor_test.dir/topk_executor_test.cc.o.d"
  "topk_executor_test"
  "topk_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
