
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topk_executor_test.cc" "tests/CMakeFiles/topk_executor_test.dir/topk_executor_test.cc.o" "gcc" "tests/CMakeFiles/topk_executor_test.dir/topk_executor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/tests/CMakeFiles/xk_test_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_service.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_engine.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_opt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_decomp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_present.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_cn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_exec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_keyword.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_datagen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_schema.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_xml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
