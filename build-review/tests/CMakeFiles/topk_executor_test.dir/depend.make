# Empty dependencies file for topk_executor_test.
# This may be replaced when dependencies are built.
