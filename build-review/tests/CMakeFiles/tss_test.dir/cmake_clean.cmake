file(REMOVE_RECURSE
  "CMakeFiles/tss_test.dir/tss_test.cc.o"
  "CMakeFiles/tss_test.dir/tss_test.cc.o.d"
  "tss_test"
  "tss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
