# Empty dependencies file for tss_test.
# This may be replaced when dependencies are built.
