# Empty dependencies file for xk_test_util.
# This may be replaced when dependencies are built.
