file(REMOVE_RECURSE
  "libxk_test_util.a"
)
