file(REMOVE_RECURSE
  "CMakeFiles/xk_test_util.dir/test_util.cc.o"
  "CMakeFiles/xk_test_util.dir/test_util.cc.o.d"
  "libxk_test_util.a"
  "libxk_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
