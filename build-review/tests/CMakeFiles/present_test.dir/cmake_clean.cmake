file(REMOVE_RECURSE
  "CMakeFiles/present_test.dir/present_test.cc.o"
  "CMakeFiles/present_test.dir/present_test.cc.o.d"
  "present_test"
  "present_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/present_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
