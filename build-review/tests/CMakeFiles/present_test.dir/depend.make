# Empty dependencies file for present_test.
# This may be replaced when dependencies are built.
