
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/blob_store.cc" "src/CMakeFiles/xk_storage.dir/storage/blob_store.cc.o" "gcc" "src/CMakeFiles/xk_storage.dir/storage/blob_store.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/xk_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/xk_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/xk_storage.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/xk_storage.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/statistics.cc" "src/CMakeFiles/xk_storage.dir/storage/statistics.cc.o" "gcc" "src/CMakeFiles/xk_storage.dir/storage/statistics.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/xk_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/xk_storage.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/xk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
