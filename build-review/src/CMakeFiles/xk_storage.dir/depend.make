# Empty dependencies file for xk_storage.
# This may be replaced when dependencies are built.
