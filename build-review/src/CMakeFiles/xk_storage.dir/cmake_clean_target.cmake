file(REMOVE_RECURSE
  "libxk_storage.a"
)
