file(REMOVE_RECURSE
  "CMakeFiles/xk_storage.dir/storage/blob_store.cc.o"
  "CMakeFiles/xk_storage.dir/storage/blob_store.cc.o.d"
  "CMakeFiles/xk_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/xk_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/xk_storage.dir/storage/index.cc.o"
  "CMakeFiles/xk_storage.dir/storage/index.cc.o.d"
  "CMakeFiles/xk_storage.dir/storage/statistics.cc.o"
  "CMakeFiles/xk_storage.dir/storage/statistics.cc.o.d"
  "CMakeFiles/xk_storage.dir/storage/table.cc.o"
  "CMakeFiles/xk_storage.dir/storage/table.cc.o.d"
  "libxk_storage.a"
  "libxk_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
