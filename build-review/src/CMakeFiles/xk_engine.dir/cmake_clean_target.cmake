file(REMOVE_RECURSE
  "libxk_engine.a"
)
