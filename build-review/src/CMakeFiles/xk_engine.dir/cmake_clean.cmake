file(REMOVE_RECURSE
  "CMakeFiles/xk_engine.dir/engine/expansion.cc.o"
  "CMakeFiles/xk_engine.dir/engine/expansion.cc.o.d"
  "CMakeFiles/xk_engine.dir/engine/full_executor.cc.o"
  "CMakeFiles/xk_engine.dir/engine/full_executor.cc.o.d"
  "CMakeFiles/xk_engine.dir/engine/load_stage.cc.o"
  "CMakeFiles/xk_engine.dir/engine/load_stage.cc.o.d"
  "CMakeFiles/xk_engine.dir/engine/naive_executor.cc.o"
  "CMakeFiles/xk_engine.dir/engine/naive_executor.cc.o.d"
  "CMakeFiles/xk_engine.dir/engine/thread_pool.cc.o"
  "CMakeFiles/xk_engine.dir/engine/thread_pool.cc.o.d"
  "CMakeFiles/xk_engine.dir/engine/topk_executor.cc.o"
  "CMakeFiles/xk_engine.dir/engine/topk_executor.cc.o.d"
  "CMakeFiles/xk_engine.dir/engine/xkeyword.cc.o"
  "CMakeFiles/xk_engine.dir/engine/xkeyword.cc.o.d"
  "libxk_engine.a"
  "libxk_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
