# Empty dependencies file for xk_engine.
# This may be replaced when dependencies are built.
