
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/expansion.cc" "src/CMakeFiles/xk_engine.dir/engine/expansion.cc.o" "gcc" "src/CMakeFiles/xk_engine.dir/engine/expansion.cc.o.d"
  "/root/repo/src/engine/full_executor.cc" "src/CMakeFiles/xk_engine.dir/engine/full_executor.cc.o" "gcc" "src/CMakeFiles/xk_engine.dir/engine/full_executor.cc.o.d"
  "/root/repo/src/engine/load_stage.cc" "src/CMakeFiles/xk_engine.dir/engine/load_stage.cc.o" "gcc" "src/CMakeFiles/xk_engine.dir/engine/load_stage.cc.o.d"
  "/root/repo/src/engine/naive_executor.cc" "src/CMakeFiles/xk_engine.dir/engine/naive_executor.cc.o" "gcc" "src/CMakeFiles/xk_engine.dir/engine/naive_executor.cc.o.d"
  "/root/repo/src/engine/thread_pool.cc" "src/CMakeFiles/xk_engine.dir/engine/thread_pool.cc.o" "gcc" "src/CMakeFiles/xk_engine.dir/engine/thread_pool.cc.o.d"
  "/root/repo/src/engine/topk_executor.cc" "src/CMakeFiles/xk_engine.dir/engine/topk_executor.cc.o" "gcc" "src/CMakeFiles/xk_engine.dir/engine/topk_executor.cc.o.d"
  "/root/repo/src/engine/xkeyword.cc" "src/CMakeFiles/xk_engine.dir/engine/xkeyword.cc.o" "gcc" "src/CMakeFiles/xk_engine.dir/engine/xkeyword.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/xk_opt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_present.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_exec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_keyword.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_decomp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_cn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_schema.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_xml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
