file(REMOVE_RECURSE
  "libxk_exec.a"
)
