file(REMOVE_RECURSE
  "CMakeFiles/xk_exec.dir/exec/operators.cc.o"
  "CMakeFiles/xk_exec.dir/exec/operators.cc.o.d"
  "CMakeFiles/xk_exec.dir/exec/plan.cc.o"
  "CMakeFiles/xk_exec.dir/exec/plan.cc.o.d"
  "libxk_exec.a"
  "libxk_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
