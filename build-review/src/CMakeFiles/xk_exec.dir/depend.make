# Empty dependencies file for xk_exec.
# This may be replaced when dependencies are built.
