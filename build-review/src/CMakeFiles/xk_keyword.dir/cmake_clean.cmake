file(REMOVE_RECURSE
  "CMakeFiles/xk_keyword.dir/keyword/master_index.cc.o"
  "CMakeFiles/xk_keyword.dir/keyword/master_index.cc.o.d"
  "libxk_keyword.a"
  "libxk_keyword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_keyword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
