file(REMOVE_RECURSE
  "libxk_keyword.a"
)
