# Empty compiler generated dependencies file for xk_keyword.
# This may be replaced when dependencies are built.
