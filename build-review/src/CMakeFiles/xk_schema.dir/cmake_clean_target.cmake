file(REMOVE_RECURSE
  "libxk_schema.a"
)
