file(REMOVE_RECURSE
  "CMakeFiles/xk_schema.dir/schema/config_parser.cc.o"
  "CMakeFiles/xk_schema.dir/schema/config_parser.cc.o.d"
  "CMakeFiles/xk_schema.dir/schema/decomposer.cc.o"
  "CMakeFiles/xk_schema.dir/schema/decomposer.cc.o.d"
  "CMakeFiles/xk_schema.dir/schema/schema_graph.cc.o"
  "CMakeFiles/xk_schema.dir/schema/schema_graph.cc.o.d"
  "CMakeFiles/xk_schema.dir/schema/tss_graph.cc.o"
  "CMakeFiles/xk_schema.dir/schema/tss_graph.cc.o.d"
  "CMakeFiles/xk_schema.dir/schema/tss_tree.cc.o"
  "CMakeFiles/xk_schema.dir/schema/tss_tree.cc.o.d"
  "CMakeFiles/xk_schema.dir/schema/validator.cc.o"
  "CMakeFiles/xk_schema.dir/schema/validator.cc.o.d"
  "libxk_schema.a"
  "libxk_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
