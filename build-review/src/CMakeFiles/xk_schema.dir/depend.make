# Empty dependencies file for xk_schema.
# This may be replaced when dependencies are built.
