file(REMOVE_RECURSE
  "libxk_opt.a"
)
