# Empty compiler generated dependencies file for xk_opt.
# This may be replaced when dependencies are built.
