file(REMOVE_RECURSE
  "CMakeFiles/xk_opt.dir/opt/cost_model.cc.o"
  "CMakeFiles/xk_opt.dir/opt/cost_model.cc.o.d"
  "CMakeFiles/xk_opt.dir/opt/optimizer.cc.o"
  "CMakeFiles/xk_opt.dir/opt/optimizer.cc.o.d"
  "CMakeFiles/xk_opt.dir/opt/reuse.cc.o"
  "CMakeFiles/xk_opt.dir/opt/reuse.cc.o.d"
  "CMakeFiles/xk_opt.dir/opt/tiler.cc.o"
  "CMakeFiles/xk_opt.dir/opt/tiler.cc.o.d"
  "libxk_opt.a"
  "libxk_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
