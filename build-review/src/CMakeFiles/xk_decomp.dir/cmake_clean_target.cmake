file(REMOVE_RECURSE
  "libxk_decomp.a"
)
