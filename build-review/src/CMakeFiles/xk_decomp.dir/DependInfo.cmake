
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/classify.cc" "src/CMakeFiles/xk_decomp.dir/decomp/classify.cc.o" "gcc" "src/CMakeFiles/xk_decomp.dir/decomp/classify.cc.o.d"
  "/root/repo/src/decomp/coverage.cc" "src/CMakeFiles/xk_decomp.dir/decomp/coverage.cc.o" "gcc" "src/CMakeFiles/xk_decomp.dir/decomp/coverage.cc.o.d"
  "/root/repo/src/decomp/decomposition.cc" "src/CMakeFiles/xk_decomp.dir/decomp/decomposition.cc.o" "gcc" "src/CMakeFiles/xk_decomp.dir/decomp/decomposition.cc.o.d"
  "/root/repo/src/decomp/enumerate.cc" "src/CMakeFiles/xk_decomp.dir/decomp/enumerate.cc.o" "gcc" "src/CMakeFiles/xk_decomp.dir/decomp/enumerate.cc.o.d"
  "/root/repo/src/decomp/fragment.cc" "src/CMakeFiles/xk_decomp.dir/decomp/fragment.cc.o" "gcc" "src/CMakeFiles/xk_decomp.dir/decomp/fragment.cc.o.d"
  "/root/repo/src/decomp/relation_builder.cc" "src/CMakeFiles/xk_decomp.dir/decomp/relation_builder.cc.o" "gcc" "src/CMakeFiles/xk_decomp.dir/decomp/relation_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/xk_schema.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_exec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_xml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
