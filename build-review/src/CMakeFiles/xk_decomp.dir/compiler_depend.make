# Empty compiler generated dependencies file for xk_decomp.
# This may be replaced when dependencies are built.
