file(REMOVE_RECURSE
  "CMakeFiles/xk_decomp.dir/decomp/classify.cc.o"
  "CMakeFiles/xk_decomp.dir/decomp/classify.cc.o.d"
  "CMakeFiles/xk_decomp.dir/decomp/coverage.cc.o"
  "CMakeFiles/xk_decomp.dir/decomp/coverage.cc.o.d"
  "CMakeFiles/xk_decomp.dir/decomp/decomposition.cc.o"
  "CMakeFiles/xk_decomp.dir/decomp/decomposition.cc.o.d"
  "CMakeFiles/xk_decomp.dir/decomp/enumerate.cc.o"
  "CMakeFiles/xk_decomp.dir/decomp/enumerate.cc.o.d"
  "CMakeFiles/xk_decomp.dir/decomp/fragment.cc.o"
  "CMakeFiles/xk_decomp.dir/decomp/fragment.cc.o.d"
  "CMakeFiles/xk_decomp.dir/decomp/relation_builder.cc.o"
  "CMakeFiles/xk_decomp.dir/decomp/relation_builder.cc.o.d"
  "libxk_decomp.a"
  "libxk_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
