# Empty compiler generated dependencies file for xk_service.
# This may be replaced when dependencies are built.
