file(REMOVE_RECURSE
  "libxk_service.a"
)
