file(REMOVE_RECURSE
  "CMakeFiles/xk_service.dir/service/metrics.cc.o"
  "CMakeFiles/xk_service.dir/service/metrics.cc.o.d"
  "CMakeFiles/xk_service.dir/service/query_service.cc.o"
  "CMakeFiles/xk_service.dir/service/query_service.cc.o.d"
  "libxk_service.a"
  "libxk_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
