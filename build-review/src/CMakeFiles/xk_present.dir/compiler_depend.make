# Empty compiler generated dependencies file for xk_present.
# This may be replaced when dependencies are built.
