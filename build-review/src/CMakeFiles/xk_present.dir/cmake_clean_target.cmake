file(REMOVE_RECURSE
  "libxk_present.a"
)
