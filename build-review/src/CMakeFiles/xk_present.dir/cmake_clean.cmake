file(REMOVE_RECURSE
  "CMakeFiles/xk_present.dir/present/mtton.cc.o"
  "CMakeFiles/xk_present.dir/present/mtton.cc.o.d"
  "CMakeFiles/xk_present.dir/present/presentation_graph.cc.o"
  "CMakeFiles/xk_present.dir/present/presentation_graph.cc.o.d"
  "libxk_present.a"
  "libxk_present.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_present.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
