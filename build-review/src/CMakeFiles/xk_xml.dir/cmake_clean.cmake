file(REMOVE_RECURSE
  "CMakeFiles/xk_xml.dir/xml/xml_graph.cc.o"
  "CMakeFiles/xk_xml.dir/xml/xml_graph.cc.o.d"
  "CMakeFiles/xk_xml.dir/xml/xml_parser.cc.o"
  "CMakeFiles/xk_xml.dir/xml/xml_parser.cc.o.d"
  "CMakeFiles/xk_xml.dir/xml/xml_writer.cc.o"
  "CMakeFiles/xk_xml.dir/xml/xml_writer.cc.o.d"
  "libxk_xml.a"
  "libxk_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
