# Empty dependencies file for xk_xml.
# This may be replaced when dependencies are built.
