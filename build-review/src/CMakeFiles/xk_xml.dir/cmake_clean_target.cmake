file(REMOVE_RECURSE
  "libxk_xml.a"
)
