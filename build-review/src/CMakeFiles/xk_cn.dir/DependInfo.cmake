
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cn/candidate_network.cc" "src/CMakeFiles/xk_cn.dir/cn/candidate_network.cc.o" "gcc" "src/CMakeFiles/xk_cn.dir/cn/candidate_network.cc.o.d"
  "/root/repo/src/cn/cn_generator.cc" "src/CMakeFiles/xk_cn.dir/cn/cn_generator.cc.o" "gcc" "src/CMakeFiles/xk_cn.dir/cn/cn_generator.cc.o.d"
  "/root/repo/src/cn/ctssn.cc" "src/CMakeFiles/xk_cn.dir/cn/ctssn.cc.o" "gcc" "src/CMakeFiles/xk_cn.dir/cn/ctssn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/xk_schema.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_keyword.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_xml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/xk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
