# Empty compiler generated dependencies file for xk_cn.
# This may be replaced when dependencies are built.
