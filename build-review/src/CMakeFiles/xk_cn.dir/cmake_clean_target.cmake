file(REMOVE_RECURSE
  "libxk_cn.a"
)
