file(REMOVE_RECURSE
  "CMakeFiles/xk_cn.dir/cn/candidate_network.cc.o"
  "CMakeFiles/xk_cn.dir/cn/candidate_network.cc.o.d"
  "CMakeFiles/xk_cn.dir/cn/cn_generator.cc.o"
  "CMakeFiles/xk_cn.dir/cn/cn_generator.cc.o.d"
  "CMakeFiles/xk_cn.dir/cn/ctssn.cc.o"
  "CMakeFiles/xk_cn.dir/cn/ctssn.cc.o.d"
  "libxk_cn.a"
  "libxk_cn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_cn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
