# Empty compiler generated dependencies file for xk_common.
# This may be replaced when dependencies are built.
