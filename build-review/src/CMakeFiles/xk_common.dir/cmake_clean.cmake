file(REMOVE_RECURSE
  "CMakeFiles/xk_common.dir/common/logging.cc.o"
  "CMakeFiles/xk_common.dir/common/logging.cc.o.d"
  "CMakeFiles/xk_common.dir/common/random.cc.o"
  "CMakeFiles/xk_common.dir/common/random.cc.o.d"
  "CMakeFiles/xk_common.dir/common/status.cc.o"
  "CMakeFiles/xk_common.dir/common/status.cc.o.d"
  "CMakeFiles/xk_common.dir/common/strings.cc.o"
  "CMakeFiles/xk_common.dir/common/strings.cc.o.d"
  "libxk_common.a"
  "libxk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
