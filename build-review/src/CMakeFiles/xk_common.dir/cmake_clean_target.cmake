file(REMOVE_RECURSE
  "libxk_common.a"
)
