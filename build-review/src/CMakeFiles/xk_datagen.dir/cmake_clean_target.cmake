file(REMOVE_RECURSE
  "libxk_datagen.a"
)
