# Empty compiler generated dependencies file for xk_datagen.
# This may be replaced when dependencies are built.
