file(REMOVE_RECURSE
  "CMakeFiles/xk_datagen.dir/datagen/dblp_gen.cc.o"
  "CMakeFiles/xk_datagen.dir/datagen/dblp_gen.cc.o.d"
  "CMakeFiles/xk_datagen.dir/datagen/tpch_gen.cc.o"
  "CMakeFiles/xk_datagen.dir/datagen/tpch_gen.cc.o.d"
  "libxk_datagen.a"
  "libxk_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
