# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/root/repo/build-review/bench/bench_fig15a" "--benchmark_filter=Fig15a/XKeyword/K:1/|Fig15aPar/MinClust/T:4|Fig15aPrune")
set_tests_properties(bench_smoke PROPERTIES  ENVIRONMENT "XK_BENCH_SCALE=tiny" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;21;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_service "/root/repo/build-review/bench/bench_service" "--benchmark_filter=Service/C:4/W:4|ServiceOverload")
set_tests_properties(bench_smoke_service PROPERTIES  ENVIRONMENT "XK_BENCH_SCALE=tiny" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
