file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16b.dir/bench_fig16b.cc.o"
  "CMakeFiles/bench_fig16b.dir/bench_fig16b.cc.o.d"
  "bench_fig16b"
  "bench_fig16b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
