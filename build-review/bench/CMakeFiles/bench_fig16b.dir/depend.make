# Empty dependencies file for bench_fig16b.
# This may be replaced when dependencies are built.
