# Empty dependencies file for bench_cn_generator.
# This may be replaced when dependencies are built.
