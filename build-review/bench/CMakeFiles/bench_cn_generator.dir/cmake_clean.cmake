file(REMOVE_RECURSE
  "CMakeFiles/bench_cn_generator.dir/bench_cn_generator.cc.o"
  "CMakeFiles/bench_cn_generator.dir/bench_cn_generator.cc.o.d"
  "bench_cn_generator"
  "bench_cn_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cn_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
