# Empty dependencies file for bench_fig16a.
# This may be replaced when dependencies are built.
