file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16a.dir/bench_fig16a.cc.o"
  "CMakeFiles/bench_fig16a.dir/bench_fig16a.cc.o.d"
  "bench_fig16a"
  "bench_fig16a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
