file(REMOVE_RECURSE
  "CMakeFiles/bench_decomp_space.dir/bench_decomp_space.cc.o"
  "CMakeFiles/bench_decomp_space.dir/bench_decomp_space.cc.o.d"
  "bench_decomp_space"
  "bench_decomp_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decomp_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
