# Empty compiler generated dependencies file for bench_decomp_space.
# This may be replaced when dependencies are built.
