# Empty compiler generated dependencies file for bench_master_index.
# This may be replaced when dependencies are built.
