file(REMOVE_RECURSE
  "CMakeFiles/bench_master_index.dir/bench_master_index.cc.o"
  "CMakeFiles/bench_master_index.dir/bench_master_index.cc.o.d"
  "bench_master_index"
  "bench_master_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_master_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
