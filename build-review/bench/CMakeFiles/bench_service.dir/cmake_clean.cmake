file(REMOVE_RECURSE
  "CMakeFiles/bench_service.dir/bench_service.cc.o"
  "CMakeFiles/bench_service.dir/bench_service.cc.o.d"
  "bench_service"
  "bench_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
