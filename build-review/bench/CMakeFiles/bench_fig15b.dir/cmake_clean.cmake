file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15b.dir/bench_fig15b.cc.o"
  "CMakeFiles/bench_fig15b.dir/bench_fig15b.cc.o.d"
  "bench_fig15b"
  "bench_fig15b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
