# Empty dependencies file for bench_fig15b.
# This may be replaced when dependencies are built.
