# Empty compiler generated dependencies file for bench_fig15a.
# This may be replaced when dependencies are built.
