file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15a.dir/bench_fig15a.cc.o"
  "CMakeFiles/bench_fig15a.dir/bench_fig15a.cc.o.d"
  "bench_fig15a"
  "bench_fig15a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
