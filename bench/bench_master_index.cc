// Ablation A3 — the master index (Section 4, item 1): build throughput over
// the DBLP database and containing-list probe latency for keywords of
// different frequencies.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "keyword/master_index.h"
#include "schema/validator.h"

namespace {

void BM_Build(benchmark::State& state) {
  auto& fixture = xk::bench::DblpBench::Get();
  auto validation =
      xk::schema::Validate(fixture.db().graph(), fixture.db().schema());
  XK_CHECK(validation.ok());
  size_t postings = 0;
  size_t memory_bytes = 0;
  for (auto _ : state) {
    xk::keyword::MasterIndex index = xk::keyword::MasterIndex::Build(
        fixture.db().graph(), *validation, fixture.xk().objects());
    benchmark::DoNotOptimize(index);
    postings = index.NumPostings();
    memory_bytes = index.MemoryBytes();
  }
  state.counters["postings"] = benchmark::Counter(static_cast<double>(postings));
  // Footprint of the arena-interned keyword store plus shrunk posting lists.
  state.counters["memory_bytes"] =
      benchmark::Counter(static_cast<double>(memory_bytes));
  state.counters["postings/s"] = benchmark::Counter(
      static_cast<double>(postings), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Probe(benchmark::State& state, const std::string& keyword) {
  auto& fixture = xk::bench::DblpBench::Get();
  const xk::keyword::MasterIndex& index = fixture.xk().master_index();
  size_t hits = 0;
  for (auto _ : state) {
    const auto& list = index.ContainingList(keyword);
    benchmark::DoNotOptimize(list);
    hits = list.size();
  }
  state.counters["postings"] = benchmark::Counter(static_cast<double>(hits));
  state.SetLabel(keyword);
}

}  // namespace

BENCHMARK(BM_Build)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Probe, frequent, std::string("ullman"));
BENCHMARK_CAPTURE(BM_Probe, tag, std::string("paper"));
BENCHMARK_CAPTURE(BM_Probe, rare, std::string("author173"));
BENCHMARK_CAPTURE(BM_Probe, missing, std::string("nosuchword"));

int main(int argc, char** argv) {
  return xk::bench::RunBenchMain("master_index", argc, argv);
}
