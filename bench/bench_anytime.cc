// Anytime top-k bench: how much of the candidate-network space the engine
// covers — and how many results it returns — as the per-query budget shrinks.
// Two sweeps over the standard DBLP author workload (XKeyword decomposition,
// Z = 6, per-network k = 10):
//
//   AnytimeCostBudget/B:*  — deterministic cost-model budgets, from starved
//                            (B = 1: only the guaranteed first plan) through
//                            effectively unbounded (B = 1e9). The admission
//                            schedule is cost-ordered by CN size class, so
//                            coverage must grow monotonically with B; a
//                            summary table after the runs checks exactly that
//                            and records the verdict in the JSON sidecar.
//   AnytimeDeadline/us:*   — wall-clock deadlines (EWMA-calibrated plan
//                            admission). Nondeterministic by nature, so this
//                            series reports observed coverage/degradation
//                            rather than asserting a shape.
//
// Per series point (and in BENCH_anytime.json):
//   results/query       — mttons returned per query
//   cns_executed/query  — candidate networks the engine actually ran
//   cns_skipped/query   — CNs the budget proved unaffordable and skipped whole
//   exhausted_class     — mean largest CN size class fully covered (-1 none)
//   degraded_fraction   — fraction of queries finishing kDegraded

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/query_engine.h"

namespace {

using xk::bench::BenchJsonWriter;
using xk::bench::DblpBench;
using xk::bench::JsonTeeReporter;
using xk::engine::Completeness;
using xk::engine::QueryMode;
using xk::engine::QueryRequest;
using xk::engine::QueryResponse;

QueryRequest MakeRequest(const std::vector<std::string>& keywords) {
  QueryRequest request;
  request.keywords = keywords;
  request.decomposition = "XKeyword";
  request.mode = QueryMode::kTopK;
  request.options.max_size_z = 6;
  request.options.per_network_k = 10;
  request.options.enable_anytime = true;
  return request;
}

struct Point {
  double cns_executed = 0;
  double cns_skipped = 0;
  double exhausted_class = 0;
  double results = 0;
  double degraded_fraction = 0;
};
std::map<double, Point> g_budget_curve;  // cost budget -> mean coverage

void Record(benchmark::State& state, const std::vector<QueryResponse>& runs) {
  double executed = 0, skipped = 0, exhausted = 0, results = 0, degraded = 0;
  for (const QueryResponse& r : runs) {
    executed += static_cast<double>(r.coverage.cns_executed);
    skipped += static_cast<double>(r.coverage.cns_skipped);
    exhausted += static_cast<double>(r.coverage.exhausted_class);
    results += static_cast<double>(r.mttons.size());
    if (r.completeness == Completeness::kDegraded) degraded += 1.0;
  }
  const double n = static_cast<double>(runs.size());
  state.counters["results/query"] = benchmark::Counter(results / n);
  state.counters["cns_executed/query"] = benchmark::Counter(executed / n);
  state.counters["cns_skipped/query"] = benchmark::Counter(skipped / n);
  state.counters["exhausted_class"] = benchmark::Counter(exhausted / n);
  state.counters["degraded_fraction"] = benchmark::Counter(degraded / n);
}

void BM_AnytimeCostBudget(benchmark::State& state, double budget) {
  auto& fixture = DblpBench::Get();
  std::vector<QueryResponse> runs;
  for (auto _ : state) {
    runs.clear();
    for (const auto& q : fixture.queries()) {
      QueryRequest request = MakeRequest(q);
      request.options.anytime_cost_budget = budget;
      auto response = fixture.xk().Run(request);
      XK_CHECK(response.ok());
      benchmark::DoNotOptimize(response.value().mttons.size());
      runs.push_back(std::move(response).value());
    }
  }
  Record(state, runs);

  Point point;
  const double n = static_cast<double>(runs.size());
  for (const QueryResponse& r : runs) {
    point.cns_executed += static_cast<double>(r.coverage.cns_executed) / n;
    point.cns_skipped += static_cast<double>(r.coverage.cns_skipped) / n;
    point.exhausted_class += static_cast<double>(r.coverage.exhausted_class) / n;
    point.results += static_cast<double>(r.mttons.size()) / n;
    if (r.completeness == Completeness::kDegraded) {
      point.degraded_fraction += 1.0 / n;
    }
  }
  g_budget_curve[budget] = point;
}

void BM_AnytimeDeadline(benchmark::State& state, int64_t deadline_us) {
  auto& fixture = DblpBench::Get();
  std::vector<QueryResponse> runs;
  for (auto _ : state) {
    runs.clear();
    for (const auto& q : fixture.queries()) {
      QueryRequest request = MakeRequest(q);
      if (deadline_us > 0) {
        request.deadline = std::chrono::microseconds(deadline_us);
      }
      auto response = fixture.xk().Run(request);
      XK_CHECK(response.ok());
      benchmark::DoNotOptimize(response.value().mttons.size());
      runs.push_back(std::move(response).value());
    }
  }
  Record(state, runs);
}

std::string FormatBudget(double budget) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", budget);
  return buf;
}

void RegisterAll() {
  // B = 1e9 stands in for "unbounded": the budget admits every plan, so the
  // run must come back kComplete and anchors the top of the coverage curve.
  for (double budget : {1.0, 10.0, 100.0, 1e3, 1e4, 1e6, 1e9}) {
    auto* b = benchmark::RegisterBenchmark(
        ("AnytimeCostBudget/B:" + FormatBudget(budget)).c_str(),
        [budget](benchmark::State& state) {
          BM_AnytimeCostBudget(state, budget);
        });
    b->Unit(benchmark::kMillisecond);
    b->Iterations(1);
  }
  // us:0 is the unbounded wall-clock baseline the bounded points degrade from.
  for (int64_t us : {250, 1000, 5000, 20000, 0}) {
    auto* b = benchmark::RegisterBenchmark(
        (us > 0 ? "AnytimeDeadline/us:" + std::to_string(us)
                : std::string("AnytimeDeadline/us:unbounded"))
            .c_str(),
        [us](benchmark::State& state) { BM_AnytimeDeadline(state, us); });
    b->Unit(benchmark::kMillisecond);
    b->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJsonWriter writer("anytime");
  JsonTeeReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Coverage-vs-budget summary. The admission schedule is a cost-ordered
  // prefix per size class, so exhausted_class (and with it cns_skipped) must
  // move monotonically with the budget — this is the bench-level echo of the
  // ExhaustedClassMonotoneInCostBudget unit test, recorded in the sidecar so
  // a regression shows up in BENCH_anytime.json diffs.
  if (!g_budget_curve.empty()) {
    std::printf("\nAnytime coverage vs cost budget (means per query):\n");
    std::printf("%-12s %10s %10s %12s %10s %10s\n", "budget", "executed",
                "skipped", "exhausted", "results", "degraded");
    bool monotone = true;
    const Point* prev = nullptr;
    for (const auto& [budget, p] : g_budget_curve) {
      if (prev != nullptr && (p.exhausted_class < prev->exhausted_class ||
                              p.cns_skipped > prev->cns_skipped)) {
        monotone = false;
      }
      std::printf("%-12s %10.1f %10.1f %12.2f %10.1f %9.0f%%\n",
                  FormatBudget(budget).c_str(), p.cns_executed, p.cns_skipped,
                  p.exhausted_class, p.results, 100.0 * p.degraded_fraction);
      writer.AddRecord("AnytimeCoverage/B:" + FormatBudget(budget), 0,
                       {{"cns_executed", p.cns_executed},
                        {"cns_skipped", p.cns_skipped},
                        {"exhausted_class", p.exhausted_class},
                        {"results", p.results},
                        {"degraded_fraction", p.degraded_fraction}});
      prev = &p;
    }
    std::printf("coverage monotone in budget: %s\n", monotone ? "yes" : "NO");
    writer.AddRecord("AnytimeCoverageMonotone", 0,
                     {{"monotone", monotone ? 1.0 : 0.0}});
  }
  writer.WriteFile();
  benchmark::Shutdown();
  return 0;
}
