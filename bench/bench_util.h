// Copyright (c) the XKeyword authors.
//
// Shared fixture for the Section-7 experiment benches: the DBLP-like
// database of the paper (synthetic citations, ~20 per paper), loaded once
// with every decomposition of Figure 15/16 materialized:
//
//   XKeyword       — Figure-12 algorithm, B = 2, M = 6
//   Complete       — all useful fragments of size L = 2
//   MinClust       — minimal, clustered per direction
//   MinNClustIndx  — minimal, hash index per attribute
//   MinNClustNIndx — minimal, no indexes (and index use disabled)
//   Inlined        — XKeyword minus redundant single-edge fragments (16b)
//   combination    — Inlined ∪ minimal (16b)
//
// Query workload: two-keyword queries over author names, mixing frequent
// (Zipf-head) and rarer names, as in the paper's experiments.

#ifndef XK_BENCH_BENCH_UTIL_H_
#define XK_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "datagen/dblp_gen.h"
#include "engine/sharded_engine.h"
#include "engine/xkeyword.h"

namespace xk::bench {

/// Machine-readable sidecar output: every bench binary writes a
/// `BENCH_<name>.json` next to its console report so drivers can diff series
/// (ns/op, rows_scanned, bloom_skips, ...) across commits without scraping
/// stdout. The file goes to $XK_BENCH_JSON_DIR (default: cwd).
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// One series point. `counters` carries the same values as the benchmark
  /// counters (rows_scanned, bloom_skips, results/query, ...).
  void AddRecord(const std::string& name, double ns_per_op,
                 const std::map<std::string, double>& counters,
                 const std::string& label = "", double iterations = 0) {
    records_.push_back(Record{name, label, ns_per_op, iterations, counters});
  }

  bool WriteFile() const {
    std::string dir = ".";
    if (const char* env = std::getenv("XK_BENCH_JSON_DIR"); env != nullptr) {
      dir = env;
    }
    const std::string path = dir + "/BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    const char* scale = std::getenv("XK_BENCH_SCALE");
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": \"%s\",\n",
                 Escaped(bench_name_).c_str(),
                 scale != nullptr ? Escaped(scale).c_str() : "default");
    std::fprintf(f, "  \"benchmarks\": [");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"label\": \"%s\", ",
                   i == 0 ? "" : ",", Escaped(r.name).c_str(),
                   Escaped(r.label).c_str());
      std::fprintf(f, "\"iterations\": %.0f, \"ns_per_op\": %.3f", r.iterations,
                   r.ns_per_op);
      for (const auto& [key, value] : r.counters) {
        std::fprintf(f, ", \"%s\": %.3f", Escaped(key).c_str(), value);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("BENCH json: %s\n", path.c_str());
    return true;
  }

 private:
  struct Record {
    std::string name;
    std::string label;
    double ns_per_op;
    double iterations;
    std::map<std::string, double> counters;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out.push_back(' ');
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string bench_name_;
  std::vector<Record> records_;
};

/// Console reporter that tees every run into a BenchJsonWriter.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(BenchJsonWriter* writer) : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::map<std::string, double> counters;
      for (const auto& [key, counter] : run.counters) {
        counters[key] = static_cast<double>(counter.value);
      }
      const double iters = static_cast<double>(run.iterations);
      writer_->AddRecord(run.benchmark_name(),
                         iters > 0 ? run.real_accumulated_time / iters * 1e9 : 0,
                         counters, run.report_label, iters);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchJsonWriter* writer_;
};

/// Drop-in main body for google-benchmark binaries: console output plus the
/// BENCH_<name>.json sidecar. Register benchmarks first, then call this.
inline int RunBenchMain(const char* bench_name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJsonWriter writer(bench_name);
  JsonTeeReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  writer.WriteFile();
  benchmark::Shutdown();
  return 0;
}

class DblpBench {
 public:
  static DblpBench& Get() {
    static DblpBench* instance = new DblpBench();
    return *instance;
  }

  const datagen::DblpDatabase& db() const { return *db_; }
  engine::XKeyword& xk() { return *xk_; }
  const std::vector<std::vector<std::string>>& queries() const { return queries_; }

  /// Prepared queries for a decomposition, cached (preparation — CN
  /// generation + planning — is shared across series points, as the paper's
  /// experiments time execution under different physical designs).
  const std::vector<engine::PreparedQuery>& Prepared(const std::string& decomposition,
                                                     int z) {
    std::string key = decomposition + "/" + std::to_string(z);
    auto it = prepared_.find(key);
    if (it != prepared_.end()) return it->second;
    engine::QueryOptions options;
    options.max_size_z = z;
    std::vector<engine::PreparedQuery> prepared;
    for (const auto& q : queries_) {
      auto p = xk_->Prepare(q, decomposition, options);
      XK_CHECK(p.ok());
      prepared.push_back(p.MoveValueUnsafe());
    }
    return prepared_.emplace(std::move(key), std::move(prepared)).first->second;
  }

 private:
  DblpBench() {
    datagen::DblpConfig config;
    config.num_conferences = 10;
    config.years_per_conference = 6;
    config.avg_papers_per_year = 20;
    config.avg_citations_per_paper = 20.0;  // the paper's citation fanout
    config.author_vocab = 200;
    config.title_vocab = 200;
    config.seed = 2003;
    // XK_BENCH_SCALE=tiny shrinks the database so smoke runs (the ctest
    // bench_smoke target, CI sanity checks) finish in seconds. Series values
    // are not comparable across scales — the JSON sidecar records the scale.
    if (const char* scale = std::getenv("XK_BENCH_SCALE");
        scale != nullptr && std::string(scale) == "tiny") {
      config.num_conferences = 3;
      config.years_per_conference = 3;
      config.avg_papers_per_year = 6;
      config.avg_citations_per_paper = 4.0;
      config.author_vocab = 60;
      config.title_vocab = 60;
    }
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe();
    xk_ = engine::XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe();

    decomp::Decomposition minimal = decomp::MakeMinimal(
        db_->tss(), decomp::PhysicalDesign::kClusterPerDirection);
    decomp::Decomposition inlined =
        decomp::MakeInlined(db_->tss(), /*B=*/2, /*M=*/6).MoveValueUnsafe();
    decomp::Decomposition combination =
        decomp::Combine(inlined, minimal, db_->tss(), "combination");

    XK_CHECK(xk_->AddDecomposition(
                    decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/6)
                        .MoveValueUnsafe())
                 .ok());
    XK_CHECK(xk_->AddDecomposition(
                    decomp::MakeComplete(db_->tss(), /*L=*/2).MoveValueUnsafe())
                 .ok());
    XK_CHECK(xk_->AddDecomposition(minimal).ok());
    XK_CHECK(xk_->AddDecomposition(decomp::MakeMinimal(
                                       db_->tss(),
                                       decomp::PhysicalDesign::kHashIndexPerColumn))
                 .ok());
    XK_CHECK(xk_->AddDecomposition(
                    decomp::MakeMinimal(db_->tss(), decomp::PhysicalDesign::kNone,
                                        /*use_indexes_at_runtime=*/false))
                 .ok());
    XK_CHECK(xk_->AddDecomposition(std::move(inlined)).ok());
    XK_CHECK(xk_->AddDecomposition(std::move(combination)).ok());

    // Two-keyword author queries: Zipf-frequent heads plus rarer tails.
    queries_ = {{"ullman", "widom"},   {"gray", "codd"},
                {"garcia", "suciu"},   {"molina", "author23"},
                {"author31", "gray"},  {"stonebraker", "author47"}};
  }

  std::unique_ptr<datagen::DblpDatabase> db_;
  std::unique_ptr<engine::XKeyword> xk_;
  std::vector<std::vector<std::string>> queries_;
  std::map<std::string, std::vector<engine::PreparedQuery>> prepared_;
};

/// The sharded data plane over the same DBLP database: 8 physical slices, so
/// one load serves every shard count up to 8 (a query's num_shards groups
/// the slices). Shared by bench_shard_topk and the bench_service shard
/// series; constructed lazily, after (and reusing) DblpBench's database.
class ShardedDblpBench {
 public:
  static ShardedDblpBench& Get() {
    static ShardedDblpBench* instance = new ShardedDblpBench();
    return *instance;
  }

  const engine::ShardedEngine& engine() const { return *engine_; }

 private:
  ShardedDblpBench() {
    const datagen::DblpDatabase& db = DblpBench::Get().db();
    engine::ShardedEngineOptions options;
    options.num_slices = 8;
    engine_ = engine::ShardedEngine::Load(&db.graph(), &db.schema(), &db.tss(),
                                          options)
                  .MoveValueUnsafe();
    XK_CHECK(engine_
                 ->AddDecomposition(
                     decomp::MakeXKeyword(db.tss(), /*B=*/2, /*M=*/6)
                         .MoveValueUnsafe())
                 .ok());
  }

  std::unique_ptr<engine::ShardedEngine> engine_;
};

}  // namespace xk::bench

#endif  // XK_BENCH_BENCH_UTIL_H_
