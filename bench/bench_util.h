// Copyright (c) the XKeyword authors.
//
// Shared fixture for the Section-7 experiment benches: the DBLP-like
// database of the paper (synthetic citations, ~20 per paper), loaded once
// with every decomposition of Figure 15/16 materialized:
//
//   XKeyword       — Figure-12 algorithm, B = 2, M = 6
//   Complete       — all useful fragments of size L = 2
//   MinClust       — minimal, clustered per direction
//   MinNClustIndx  — minimal, hash index per attribute
//   MinNClustNIndx — minimal, no indexes (and index use disabled)
//   Inlined        — XKeyword minus redundant single-edge fragments (16b)
//   combination    — Inlined ∪ minimal (16b)
//
// Query workload: two-keyword queries over author names, mixing frequent
// (Zipf-head) and rarer names, as in the paper's experiments.

#ifndef XK_BENCH_BENCH_UTIL_H_
#define XK_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "datagen/dblp_gen.h"
#include "engine/xkeyword.h"

namespace xk::bench {

class DblpBench {
 public:
  static DblpBench& Get() {
    static DblpBench* instance = new DblpBench();
    return *instance;
  }

  const datagen::DblpDatabase& db() const { return *db_; }
  engine::XKeyword& xk() { return *xk_; }
  const std::vector<std::vector<std::string>>& queries() const { return queries_; }

  /// Prepared queries for a decomposition, cached (preparation — CN
  /// generation + planning — is shared across series points, as the paper's
  /// experiments time execution under different physical designs).
  const std::vector<engine::PreparedQuery>& Prepared(const std::string& decomposition,
                                                     int z) {
    std::string key = decomposition + "/" + std::to_string(z);
    auto it = prepared_.find(key);
    if (it != prepared_.end()) return it->second;
    engine::QueryOptions options;
    options.max_size_z = z;
    std::vector<engine::PreparedQuery> prepared;
    for (const auto& q : queries_) {
      auto p = xk_->Prepare(q, decomposition, options);
      XK_CHECK(p.ok());
      prepared.push_back(p.MoveValueUnsafe());
    }
    return prepared_.emplace(std::move(key), std::move(prepared)).first->second;
  }

 private:
  DblpBench() {
    datagen::DblpConfig config;
    config.num_conferences = 10;
    config.years_per_conference = 6;
    config.avg_papers_per_year = 20;
    config.avg_citations_per_paper = 20.0;  // the paper's citation fanout
    config.author_vocab = 200;
    config.title_vocab = 200;
    config.seed = 2003;
    db_ = datagen::DblpDatabase::Generate(config).MoveValueUnsafe();
    xk_ = engine::XKeyword::Load(&db_->graph(), &db_->schema(), &db_->tss())
              .MoveValueUnsafe();

    decomp::Decomposition minimal = decomp::MakeMinimal(
        db_->tss(), decomp::PhysicalDesign::kClusterPerDirection);
    decomp::Decomposition inlined =
        decomp::MakeInlined(db_->tss(), /*B=*/2, /*M=*/6).MoveValueUnsafe();
    decomp::Decomposition combination =
        decomp::Combine(inlined, minimal, db_->tss(), "combination");

    XK_CHECK(xk_->AddDecomposition(
                    decomp::MakeXKeyword(db_->tss(), /*B=*/2, /*M=*/6)
                        .MoveValueUnsafe())
                 .ok());
    XK_CHECK(xk_->AddDecomposition(
                    decomp::MakeComplete(db_->tss(), /*L=*/2).MoveValueUnsafe())
                 .ok());
    XK_CHECK(xk_->AddDecomposition(minimal).ok());
    XK_CHECK(xk_->AddDecomposition(decomp::MakeMinimal(
                                       db_->tss(),
                                       decomp::PhysicalDesign::kHashIndexPerColumn))
                 .ok());
    XK_CHECK(xk_->AddDecomposition(
                    decomp::MakeMinimal(db_->tss(), decomp::PhysicalDesign::kNone,
                                        /*use_indexes_at_runtime=*/false))
                 .ok());
    XK_CHECK(xk_->AddDecomposition(std::move(inlined)).ok());
    XK_CHECK(xk_->AddDecomposition(std::move(combination)).ok());

    // Two-keyword author queries: Zipf-frequent heads plus rarer tails.
    queries_ = {{"ullman", "widom"},   {"gray", "codd"},
                {"garcia", "suciu"},   {"molina", "author23"},
                {"author31", "gray"},  {"stonebraker", "author47"}};
  }

  std::unique_ptr<datagen::DblpDatabase> db_;
  std::unique_ptr<engine::XKeyword> xk_;
  std::vector<std::vector<std::string>> queries_;
  std::map<std::string, std::vector<engine::PreparedQuery>> prepared_;
};

}  // namespace xk::bench

#endif  // XK_BENCH_BENCH_UTIL_H_
