// Closed-loop throughput bench for the QueryService serving front-end: C
// client threads each submit a query, wait for its response, and immediately
// submit the next one, cycling through the DBLP author workload against one
// shared engine. Reported per series point (and in BENCH_service.json):
//
//   qps       — completed queries per wall-clock second
//   p50_us    — median end-to-end latency (submit → response), microseconds
//   p99_us    — tail latency, microseconds
//   rejected  — admission-queue rejections (kResourceExhausted)
//
// Series: Service/C:<clients>/W:<workers> scales the client count against a
// fixed worker pool (closed-loop saturation; cache bypassed so every query
// actually executes), ServiceOverload drives a one-worker, two-slot queue
// past capacity so the admission path and its rejection counters are
// exercised rather than idle, and ServiceRepeated/cache:{on,off} replays a
// small query set many times to expose the answer cache: with the cache on
// it also reports hit_rate and coalesced, and its p50 against the cache:off
// p50 is the cache-hit vs cache-miss latency gap.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/xkeyword.h"
#include "service/query_service.h"

namespace {

using xk::bench::DblpBench;
using xk::engine::QueryRequest;
using xk::service::MetricsSnapshot;
using xk::service::QueryService;
using xk::service::QueryServiceOptions;

struct LoopSetup {
  int clients = 4;
  int workers = 4;
  size_t queue_capacity = 256;
  int queries_per_client = 40;
  /// Queries cycled per client; 0 = the whole fixture workload.
  size_t distinct_queries = 0;
  xk::engine::CacheMode cache_mode = xk::engine::CacheMode::kBypass;
  /// Serve from the sharded data plane (ShardedDblpBench) instead of the
  /// single-instance engine; queries then scatter to `num_shards` groups.
  bool use_sharded_engine = false;
  int num_shards = 1;
  /// Per-query deadline (0 = unbounded). Armed at admission, so queue wait
  /// counts against it — the overload-degradation series relies on that.
  std::chrono::milliseconds deadline{0};
  /// Anytime CN budgeting under the deadline (QueryOptions::enable_anytime);
  /// off = the legacy truncate-mid-CN behaviour, for the A/B.
  bool anytime = true;
};

QueryRequest MakeRequest(const std::vector<std::string>& keywords,
                         const LoopSetup& setup) {
  QueryRequest request;
  request.keywords = keywords;
  request.decomposition = "XKeyword";
  request.options.max_size_z = 6;
  request.options.per_network_k = 10;
  request.options.num_shards = setup.num_shards;
  request.options.enable_anytime = setup.anytime;
  request.cache_mode = setup.cache_mode;
  if (setup.deadline.count() > 0) request.deadline = setup.deadline;
  return request;
}

void BM_ServiceClosedLoop(benchmark::State& state, const LoopSetup& setup) {
  auto& fixture = DblpBench::Get();
  const auto& queries = fixture.queries();

  QueryServiceOptions options;
  options.num_workers = setup.workers;
  options.queue_capacity = setup.queue_capacity;

  const size_t cycle = setup.distinct_queries > 0
                           ? std::min(setup.distinct_queries, queries.size())
                           : queries.size();

  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t degraded = 0, deadline_exceeded = 0;
  uint64_t hits = 0, misses = 0, coalesced = 0;
  double p50 = 0, p99 = 0;
  const xk::engine::QueryEngine* engine =
      setup.use_sharded_engine
          ? static_cast<const xk::engine::QueryEngine*>(
                &xk::bench::ShardedDblpBench::Get().engine())
          : &fixture.xk();
  for (auto _ : state) {
    auto service = QueryService::Create(engine, options).MoveValueUnsafe();
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(setup.clients));
    for (int c = 0; c < setup.clients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < setup.queries_per_client; ++i) {
          auto handle =
              service->Submit(MakeRequest(queries[(c + i) % cycle], setup));
          if (!handle.ok()) continue;  // rejected: counted by the service
          auto response = handle->Wait();
          benchmark::DoNotOptimize(response);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const MetricsSnapshot snap = service->metrics().Snapshot();
    completed += snap.completed_ok;
    rejected += snap.rejected;
    degraded += snap.degraded;
    deadline_exceeded += snap.deadline_exceeded;
    hits += snap.cache_hits;
    misses += snap.cache_misses;
    coalesced += snap.coalesced;
    p50 = snap.latency_p50_us;  // last iteration's distribution
    p99 = snap.latency_p99_us;
  }

  // kIsRate divides by the (real) elapsed benchmark time → queries/second.
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(completed), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = benchmark::Counter(p50);
  state.counters["p99_us"] = benchmark::Counter(p99);
  state.counters["rejected"] = benchmark::Counter(static_cast<double>(rejected));
  if (setup.deadline.count() > 0) {
    // The overload story: how many deadline-bound queries still delivered a
    // usable (degraded) answer vs. how many tripped at all.
    state.counters["degraded"] =
        benchmark::Counter(static_cast<double>(degraded));
    state.counters["deadline_exceeded"] =
        benchmark::Counter(static_cast<double>(deadline_exceeded));
  }
  if (setup.cache_mode != xk::engine::CacheMode::kBypass) {
    const uint64_t eligible = hits + misses + coalesced;
    state.counters["hit_rate"] = benchmark::Counter(
        eligible > 0 ? static_cast<double>(hits) / static_cast<double>(eligible)
                     : 0.0);
    state.counters["coalesced"] =
        benchmark::Counter(static_cast<double>(coalesced));
  }
  state.SetLabel(std::to_string(setup.clients) + " clients / " +
                 std::to_string(setup.workers) + " workers");
}

void RegisterAll() {
  for (int clients : {1, 4, 8}) {
    LoopSetup setup;
    setup.clients = clients;
    auto* b = benchmark::RegisterBenchmark(
        ("Service/C:" + std::to_string(clients) + "/W:4").c_str(),
        [setup](benchmark::State& state) { BM_ServiceClosedLoop(state, setup); });
    b->Unit(benchmark::kMillisecond);
    b->Iterations(2);
    b->UseRealTime();
  }

  // Overload: more clients than the one worker and two queue slots can hold;
  // the admission queue must shed load (rejected > 0) without stalling.
  LoopSetup overload;
  overload.clients = 8;
  overload.workers = 1;
  overload.queue_capacity = 2;
  overload.queries_per_client = 20;
  auto* b = benchmark::RegisterBenchmark(
      "ServiceOverload/C:8/W:1",
      [overload](benchmark::State& state) { BM_ServiceClosedLoop(state, overload); });
  b->Unit(benchmark::kMillisecond);
  b->Iterations(2);
  b->UseRealTime();

  // Deadline overload: the same saturated one-worker setup, but every query
  // carries a deadline armed at admission. Queue wait eats most of the
  // budget, so late queries degrade; anytime:on spends the remaining budget
  // on whole CNs (structured degraded answers with a coverage bound), while
  // anytime:off is the legacy truncate-mid-CN behaviour. The rejected
  // counter stays comparable to ServiceOverload — degradation converts
  // would-be bare timeouts, not admission rejections.
  for (bool anytime : {true, false}) {
    LoopSetup deadline = overload;
    deadline.deadline = std::chrono::milliseconds(7);
    deadline.anytime = anytime;
    auto* d = benchmark::RegisterBenchmark(
        anytime ? "ServiceDeadlineOverload/anytime:on"
                : "ServiceDeadlineOverload/anytime:off",
        [deadline](benchmark::State& state) {
          BM_ServiceClosedLoop(state, deadline);
        });
    d->Unit(benchmark::kMillisecond);
    d->Iterations(2);
    d->UseRealTime();
  }

  // Repeated workload: 4 clients replay the same 8 queries 100 times each.
  // cache:on serves all but the first occurrence of each query from the
  // answer cache (hit_rate well above 0.9); cache:off (kBypass) executes
  // every one, so its p50 is the cache-miss latency to compare against.
  for (bool cache_on : {true, false}) {
    LoopSetup repeated;
    repeated.clients = 4;
    repeated.workers = 4;
    repeated.queries_per_client = 100;
    repeated.distinct_queries = 8;
    repeated.cache_mode = cache_on ? xk::engine::CacheMode::kDefault
                                   : xk::engine::CacheMode::kBypass;
    auto* r = benchmark::RegisterBenchmark(
        cache_on ? "ServiceRepeated/cache:on" : "ServiceRepeated/cache:off",
        [repeated](benchmark::State& state) {
          BM_ServiceClosedLoop(state, repeated);
        });
    r->Unit(benchmark::kMillisecond);
    r->Iterations(2);
    r->UseRealTime();
  }

  // Sharded data plane behind the service: the same closed loop served by
  // engine::ShardedEngine, each query scattering to S shard groups. S:1
  // delegates to the inner single-instance engine, so the pair isolates the
  // serving-layer effect of per-query scatter-gather parallelism.
  for (int shards : {1, 4}) {
    LoopSetup sharded;
    sharded.clients = 4;
    sharded.workers = 4;
    sharded.use_sharded_engine = true;
    sharded.num_shards = shards;
    auto* s = benchmark::RegisterBenchmark(
        ("ServiceSharded/S:" + std::to_string(shards) + "/C:4/W:4").c_str(),
        [sharded](benchmark::State& state) {
          BM_ServiceClosedLoop(state, sharded);
        });
    s->Unit(benchmark::kMillisecond);
    s->Iterations(2);
    s->UseRealTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return xk::bench::RunBenchMain("service", argc, argv);
}
