// Ablation A8 — plan-DAG execution: cross-CN shared-subplan memoization plus
// cost-ordered candidate-network scheduling, on the Figure-16(a) workload
// (complete result streams per network, minimal clustered decomposition,
// single-threaded). The DAG generalizes Section 4's common-subexpression
// reuse from leaf scans to whole join prefixes: each prefix several candidate
// networks share executes once and its materialized rows are replayed by
// every consumer. Reports end-to-end speedup (DAG on vs off), the cross-CN
// subplan hit rate, and the rows consumers did not recompute.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/topk_executor.h"

namespace {

struct Point {
  double dag_ms = 0;
  double off_ms = 0;
  double hits = 0;
  double misses = 0;
  double saved_rows = 0;
};
std::map<int, Point> g_points;

void BM_TopK(benchmark::State& state, bool dag) {
  auto& fixture = xk::bench::DblpBench::Get();
  const int max_size = static_cast<int>(state.range(0));
  const auto& prepared = fixture.Prepared("MinClust", /*z=*/8);

  xk::engine::QueryOptions options;
  options.max_size_z = 8;
  options.max_network_size = max_size;
  // Deep result streams, as in Figure 16(a): the search-engine presentation
  // enumerates each network's results, so shared join prefixes are re-entered
  // once per consuming network without the DAG. Deeper streams than fig16a's
  // 5000 — prefix materialization is paid once regardless of k, so the DAG's
  // advantage compounds as consumers drain more of each prefix.
  options.per_network_k = 50000;
  options.num_threads = 1;
  options.enable_subplan_reuse = dag;
  options.cost_ordered_scheduling = dag;

  uint64_t hits = 0, misses = 0, saved = 0, bytes_peak = 0;
  xk::Stopwatch total;
  for (auto _ : state) {
    for (const xk::engine::PreparedQuery& q : prepared) {
      xk::engine::ExecutionStats stats;
      xk::engine::TopKExecutor executor;
      benchmark::DoNotOptimize(executor.Run(q, options, &stats));
      hits += stats.subplan_hits;
      misses += stats.subplan_misses;
      saved += stats.dedup_saved_rows;
      bytes_peak = std::max<uint64_t>(bytes_peak, stats.subplan_bytes);
    }
  }
  const double iters = static_cast<double>(state.iterations());
  const double per_iter_ms = total.ElapsedMillis() / iters;
  Point& point = g_points[max_size];
  (dag ? point.dag_ms : point.off_ms) = per_iter_ms;
  if (dag) {
    point.hits = static_cast<double>(hits) / iters;
    point.misses = static_cast<double>(misses) / iters;
    point.saved_rows = static_cast<double>(saved) / iters;
  }
  state.counters["subplan_hits"] =
      benchmark::Counter(static_cast<double>(hits) / iters);
  state.counters["subplan_misses"] =
      benchmark::Counter(static_cast<double>(misses) / iters);
  state.counters["dedup_saved_rows"] =
      benchmark::Counter(static_cast<double>(saved) / iters);
  state.counters["subplan_bytes_peak"] =
      benchmark::Counter(static_cast<double>(bytes_peak));
  state.SetLabel(dag ? "plan DAG" : "forest (no sharing)");
}

void RegisterAll() {
  for (bool dag : {false, true}) {
    auto* b = benchmark::RegisterBenchmark(
        dag ? "ReuseDag/dag" : "ReuseDag/off",
        [dag](benchmark::State& state) { BM_TopK(state, dag); });
    b->ArgName("maxCTSSN");
    for (int m : {4, 5, 6}) b->Arg(m);
    b->Unit(benchmark::kMillisecond);
    b->Iterations(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  xk::bench::BenchJsonWriter writer("reuse_dag");
  xk::bench::JsonTeeReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  std::printf("\nPlan-DAG series — speedup of shared-subplan execution:\n");
  std::printf("%-12s %12s %12s %10s %10s %14s\n", "maxCTSSN", "forest(ms)",
              "dag(ms)", "speedup", "hit-rate", "saved rows");
  for (const auto& [size, p] : g_points) {
    if (p.dag_ms <= 0) continue;
    const double lookups = p.hits + p.misses;
    const double hit_rate = lookups > 0 ? p.hits / lookups : 0;
    std::printf("%-12d %12.2f %12.2f %9.2fx %9.1f%% %14.0f\n", size, p.off_ms,
                p.dag_ms, p.off_ms / p.dag_ms, 100.0 * hit_rate, p.saved_rows);
    writer.AddRecord("ReuseDag/speedup/maxCTSSN:" + std::to_string(size),
                     p.dag_ms * 1e6,
                     {{"speedup", p.off_ms / p.dag_ms},
                      {"subplan_hit_rate", hit_rate},
                      {"dedup_saved_rows", p.saved_rows}});
  }
  writer.WriteFile();
  benchmark::Shutdown();
  return 0;
}
