// Copyright (c) the XKeyword authors.
//
// A/B microbenchmarks for the vectorized execution path: row-at-a-time vs
// block-at-a-time variants of the filtered scan, the hash join (legacy
// unordered_map build vs flat open-addressing JoinHashTable), and the
// index-nested-loop join, over synthetic tables sized independently of the
// DBLP fixture. Every series point reports rows/sec so the speedup is a
// straight ratio of the row and block variants.
//
// The kernels:{scalar,simd} series (BM_Kernel*) A/Bs the SIMD block kernels
// against their scalar references on identical inputs — selection compress,
// batched hash build, gathered group-probe, and Bloom block filtering — plus
// one end-to-end hash join under the per-query dispatch knob. Those runs are
// split into their own BENCH_simd_kernels.json sidecar; each record's label
// is the ISA the arm actually dispatched to.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/simd.h"
#include "exec/join_hash_table.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "storage/index.h"

namespace xk::bench {
namespace {

using exec::ColumnInSet;
using exec::ColumnRef;
using exec::ExecOptions;
using exec::ForEachMatch;
using exec::HashJoinExecutor;
using exec::JoinQuery;
using exec::JoinStep;
using exec::NestedLoopExecutor;
using storage::ObjectId;
using storage::RowId;
using storage::Table;
using storage::Tuple;

/// Synthetic fixture, built once: a scan table with a ~50%-selective in-set
/// filter, and an equi-join pair with ~2 build rows per key (so hash-join
/// output stays linear in the input).
struct SyntheticTables {
  static SyntheticTables& Get() {
    static SyntheticTables* instance = new SyntheticTables();
    return *instance;
  }

  size_t scan_rows;
  size_t join_rows;
  std::unique_ptr<Table> scan;
  std::unique_ptr<Table> left;
  std::unique_ptr<Table> right;  // hash-indexed on column 0
  storage::IdSet keep;           // ~half of the scan table's value domain

 private:
  SyntheticTables() {
    const char* scale = std::getenv("XK_BENCH_SCALE");
    const bool tiny = scale != nullptr && std::string(scale) == "tiny";
    scan_rows = tiny ? 20'000 : 400'000;
    join_rows = tiny ? 5'000 : 100'000;

    Random rng(2003);
    constexpr ObjectId kScanDomain = 100;
    scan = std::make_unique<Table>("scan",
                                   std::vector<std::string>{"a", "b"});
    for (size_t i = 0; i < scan_rows; ++i) {
      XK_CHECK(scan->Append(Tuple{rng.Uniform(0, kScanDomain - 1),
                                  rng.Uniform(0, kScanDomain - 1)})
                   .ok());
    }
    for (ObjectId v = 0; v < kScanDomain; v += 2) keep.insert(v);

    const ObjectId join_domain = static_cast<ObjectId>(join_rows / 2);
    left = std::make_unique<Table>("left",
                                   std::vector<std::string>{"src", "dst"});
    right = std::make_unique<Table>("right",
                                    std::vector<std::string>{"src", "dst"});
    for (size_t i = 0; i < join_rows; ++i) {
      XK_CHECK(left->Append(Tuple{rng.Uniform(0, join_domain - 1),
                                  rng.Uniform(0, join_domain - 1)})
                   .ok());
      XK_CHECK(right->Append(Tuple{rng.Uniform(0, join_domain - 1),
                                   rng.Uniform(0, join_domain - 1)})
                   .ok());
    }
    XK_CHECK(right->BuildHashIndex(0).ok());
    scan->Freeze();
    left->Freeze();
    right->Freeze();
  }
};

/// left |><| right on right.src == left.dst, no local filters.
JoinQuery MakeJoinQuery(const SyntheticTables& t) {
  JoinQuery q;
  JoinStep s0;
  s0.table = t.left.get();
  q.steps.push_back(s0);
  JoinStep s1;
  s1.table = t.right.get();
  s1.eq.push_back({0, ColumnRef{0, 1}});
  q.steps.push_back(s1);
  return q;
}

void BM_Scan(benchmark::State& state, bool vectorized) {
  SyntheticTables& t = SyntheticTables::Get();
  ExecOptions opts;
  opts.use_indexes = false;
  opts.vectorized = vectorized;
  size_t matched = 0;
  for (auto _ : state) {
    size_t n = 0;
    ForEachMatch(*t.scan, {}, {ColumnInSet{0, &t.keep}}, opts,
                 [&](RowId) {
                   ++n;
                   return true;
                 },
                 nullptr);
    benchmark::DoNotOptimize(n);
    matched = n;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(t.scan_rows),
      benchmark::Counter::kIsRate);
  state.counters["matched"] = static_cast<double>(matched);
}

void BM_HashJoin(benchmark::State& state, bool vectorized) {
  SyntheticTables& t = SyntheticTables::Get();
  const JoinQuery q = MakeJoinQuery(t);
  ExecOptions opts;
  opts.vectorized = vectorized;
  size_t results = 0;
  for (auto _ : state) {
    HashJoinExecutor hj(&q, opts);
    size_t n = 0;
    XK_CHECK(hj.Run([&](const std::vector<storage::TupleView>&) {
                 ++n;
                 return true;
               })
                 .ok());
    benchmark::DoNotOptimize(n);
    results = n;
  }
  // Work per iteration: one pass over the probe side plus one over the build
  // side — identical for both variants, so rows/sec ratios are time ratios.
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(2 * t.join_rows),
      benchmark::Counter::kIsRate);
  state.counters["results"] = static_cast<double>(results);
}

void BM_InlJoin(benchmark::State& state, bool vectorized) {
  SyntheticTables& t = SyntheticTables::Get();
  const JoinQuery q = MakeJoinQuery(t);
  ExecOptions opts;
  opts.vectorized = vectorized;
  size_t results = 0;
  for (auto _ : state) {
    NestedLoopExecutor nl(&q, opts);
    size_t n = 0;
    XK_CHECK(nl.Run([&](const std::vector<storage::TupleView>&) {
                 ++n;
                 return true;
               })
                 .ok());
    benchmark::DoNotOptimize(n);
    results = n;
  }
  // Work per iteration: every driver row probed once through the hash index.
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(t.join_rows),
      benchmark::Counter::kIsRate);
  state.counters["results"] = static_cast<double>(results);
}

BENCHMARK_CAPTURE(BM_Scan, row, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Scan, block, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HashJoin, row, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HashJoin, block, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InlJoin, row, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InlJoin, block, true)->Unit(benchmark::kMillisecond);

// --- kernels:{scalar,simd} series ---------------------------------------

constexpr size_t kKernelBlock = 1024;  // the engine's execution block size

/// Flat key columns for the kernel-level A/B, plus one prebuilt hash table
/// per dispatch arm (identical layout: hashing is bit-exact across arms, so
/// insertion order and collisions resolve identically).
struct KernelFixture {
  static KernelFixture& Get() {
    static KernelFixture* instance = new KernelFixture();
    return *instance;
  }

  std::vector<ObjectId> build_keys;  // right.src — the hash-join build side
  std::vector<ObjectId> probe_keys;  // left.dst — the probe side
  exec::JoinHashTable scalar_table;
  exec::JoinHashTable simd_table;

 private:
  KernelFixture()
      : scalar_table(/*key_width=*/1, /*force_scalar=*/true),
        simd_table(/*key_width=*/1, /*force_scalar=*/false) {
    SyntheticTables& t = SyntheticTables::Get();
    build_keys.reserve(t.join_rows);
    probe_keys.reserve(t.join_rows);
    for (size_t r = 0; r < t.join_rows; ++r) {
      build_keys.push_back(t.right->At(r, 0));
      probe_keys.push_back(t.left->At(r, 1));
    }
    for (exec::JoinHashTable* table : {&scalar_table, &simd_table}) {
      table->Reserve(build_keys.size());
      for (size_t base = 0; base < build_keys.size(); base += kKernelBlock) {
        const size_t bn = std::min(kKernelBlock, build_keys.size() - base);
        table->InsertBatch(build_keys.data() + base, bn,
                           static_cast<uint32_t>(base));
      }
    }
  }
};

simd::IsaLevel ArmLevel(bool use_simd) {
  return use_simd ? simd::DetectedIsaLevel() : simd::IsaLevel::kScalar;
}

/// Selection compress: the two-element IN ladder over the scan table's first
/// column, block at a time, exactly as ScanBlockIterator drives it.
void BM_KernelSelect(benchmark::State& state, bool use_simd) {
  SyntheticTables& t = SyntheticTables::Get();
  const simd::IsaLevel level = ArmLevel(use_simd);
  const ObjectId* base_data = t.scan->RowData();
  std::vector<uint32_t> row_ids(t.scan_rows);
  std::iota(row_ids.begin(), row_ids.end(), 0u);
  std::vector<uint32_t> sel(kKernelBlock);
  const int64_t vals[2] = {3, 7};
  size_t kept = 0;
  for (auto _ : state) {
    size_t total = 0;
    for (size_t base = 0; base < t.scan_rows; base += kKernelBlock) {
      const size_t bn = std::min(kKernelBlock, t.scan_rows - base);
      for (size_t i = 0; i < bn; ++i) sel[i] = static_cast<uint32_t>(i);
      total += simd::SelCompressInSet(base_data, /*arity=*/2, /*column=*/0,
                                      row_ids.data() + base, sel.data(), bn,
                                      vals, 2, level);
    }
    benchmark::DoNotOptimize(total);
    kept = total;
  }
  state.SetLabel(simd::IsaLevelToString(level));
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(t.scan_rows),
      benchmark::Counter::kIsRate);
  state.counters["kept"] = static_cast<double>(kept);
}

/// Hash build: fresh JoinHashTable per iteration, filled block-batched.
void BM_KernelHashBuild(benchmark::State& state, bool use_simd) {
  KernelFixture& f = KernelFixture::Get();
  size_t keys = 0;
  for (auto _ : state) {
    exec::JoinHashTable table(/*key_width=*/1, /*force_scalar=*/!use_simd);
    table.Reserve(f.build_keys.size());
    for (size_t base = 0; base < f.build_keys.size(); base += kKernelBlock) {
      const size_t bn = std::min(kKernelBlock, f.build_keys.size() - base);
      table.InsertBatch(f.build_keys.data() + base, bn,
                        static_cast<uint32_t>(base));
    }
    benchmark::DoNotOptimize(table.num_keys());
    keys = table.num_keys();
  }
  state.SetLabel(simd::IsaLevelToString(ArmLevel(use_simd)));
  state.counters["keys_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(f.build_keys.size()),
      benchmark::Counter::kIsRate);
  state.counters["distinct_keys"] = static_cast<double>(keys);
}

/// Hash-join probe: batched hash + gathered group-probe against the prebuilt
/// table (the acceptance series — keys_per_sec is probe throughput).
void BM_KernelProbe(benchmark::State& state, bool use_simd) {
  KernelFixture& f = KernelFixture::Get();
  const exec::JoinHashTable& table = use_simd ? f.simd_table : f.scalar_table;
  std::vector<uint32_t> heads(kKernelBlock);
  // The hit count is recorded from one untimed sweep; the timed region is
  // the probe kernel alone, so keys_per_sec compares the kernels and not
  // the result-consumption loop both arms share.
  size_t hits = 0;
  for (size_t base = 0; base < f.probe_keys.size(); base += kKernelBlock) {
    const size_t bn = std::min(kKernelBlock, f.probe_keys.size() - base);
    table.LookupBatch(f.probe_keys.data() + base, bn, heads.data());
    for (size_t i = 0; i < bn; ++i) {
      hits += heads[i] != exec::JoinHashTable::kNil;
    }
  }
  for (auto _ : state) {
    for (size_t base = 0; base < f.probe_keys.size(); base += kKernelBlock) {
      const size_t bn = std::min(kKernelBlock, f.probe_keys.size() - base);
      table.LookupBatch(f.probe_keys.data() + base, bn, heads.data());
    }
    benchmark::DoNotOptimize(heads.data());
  }
  state.SetLabel(simd::IsaLevelToString(ArmLevel(use_simd)));
  state.counters["keys_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(f.probe_keys.size()),
      benchmark::Counter::kIsRate);
  state.counters["hits"] = static_cast<double>(hits);
}

/// Bloom block filtering: MayContainBlock over the probe keys against a
/// filter of the build keys — the semi-join pruning hot loop.
void BM_KernelBloom(benchmark::State& state, bool use_simd) {
  KernelFixture& f = KernelFixture::Get();
  storage::BloomFilter bloom(f.build_keys.size());
  for (ObjectId k : f.build_keys) bloom.Add(k);
  std::vector<uint32_t> sel(kKernelBlock);
  size_t kept = 0;
  for (auto _ : state) {
    size_t n = 0;
    for (size_t base = 0; base < f.probe_keys.size(); base += kKernelBlock) {
      const size_t bn = std::min(kKernelBlock, f.probe_keys.size() - base);
      for (size_t i = 0; i < bn; ++i) sel[i] = static_cast<uint32_t>(i);
      n += bloom.MayContainBlock(f.probe_keys.data() + base, sel.data(), bn,
                                 /*force_scalar=*/!use_simd);
    }
    benchmark::DoNotOptimize(n);
    kept = n;
  }
  state.SetLabel(simd::IsaLevelToString(ArmLevel(use_simd)));
  state.counters["keys_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(f.probe_keys.size()),
      benchmark::Counter::kIsRate);
  state.counters["kept"] = static_cast<double>(kept);
}

/// End-to-end: the block hash join under the per-query dispatch knob, so the
/// kernel gains are visible in operator context, not just in isolation.
void BM_KernelJoinEndToEnd(benchmark::State& state, bool use_simd) {
  SyntheticTables& t = SyntheticTables::Get();
  const JoinQuery q = MakeJoinQuery(t);
  ExecOptions opts;
  opts.vectorized = true;
  opts.force_scalar_kernels = !use_simd;
  size_t results = 0;
  for (auto _ : state) {
    HashJoinExecutor hj(&q, opts);
    size_t n = 0;
    XK_CHECK(hj.Run([&](const std::vector<storage::TupleView>&) {
                 ++n;
                 return true;
               })
                 .ok());
    benchmark::DoNotOptimize(n);
    results = n;
  }
  state.SetLabel(simd::IsaLevelToString(ArmLevel(use_simd)));
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(2 * t.join_rows),
      benchmark::Counter::kIsRate);
  state.counters["results"] = static_cast<double>(results);
}

BENCHMARK_CAPTURE(BM_KernelSelect, kernels:scalar, false);
BENCHMARK_CAPTURE(BM_KernelSelect, kernels:simd, true);
BENCHMARK_CAPTURE(BM_KernelHashBuild, kernels:scalar, false);
BENCHMARK_CAPTURE(BM_KernelHashBuild, kernels:simd, true);
BENCHMARK_CAPTURE(BM_KernelProbe, kernels:scalar, false);
BENCHMARK_CAPTURE(BM_KernelProbe, kernels:simd, true);
BENCHMARK_CAPTURE(BM_KernelBloom, kernels:scalar, false);
BENCHMARK_CAPTURE(BM_KernelBloom, kernels:simd, true);
BENCHMARK_CAPTURE(BM_KernelJoinEndToEnd, kernels:scalar, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_KernelJoinEndToEnd, kernels:simd, true)
    ->Unit(benchmark::kMillisecond);

/// Tees console runs into two sidecars: the kernels:{scalar,simd} series
/// (every BM_Kernel* run) lands in BENCH_simd_kernels.json, everything else
/// in BENCH_exec_vectorized.json.
class SplitTeeReporter : public benchmark::ConsoleReporter {
 public:
  SplitTeeReporter(BenchJsonWriter* exec_writer, BenchJsonWriter* simd_writer)
      : exec_writer_(exec_writer), simd_writer_(simd_writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::map<std::string, double> counters;
      for (const auto& [key, counter] : run.counters) {
        counters[key] = static_cast<double>(counter.value);
      }
      const std::string name = run.benchmark_name();
      BenchJsonWriter* writer =
          name.find("BM_Kernel") != std::string::npos ? simd_writer_
                                                      : exec_writer_;
      const double iters = static_cast<double>(run.iterations);
      writer->AddRecord(name,
                        iters > 0 ? run.real_accumulated_time / iters * 1e9 : 0,
                        counters, run.report_label, iters);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchJsonWriter* exec_writer_;
  BenchJsonWriter* simd_writer_;
};

}  // namespace
}  // namespace xk::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  xk::bench::BenchJsonWriter exec_writer("exec_vectorized");
  xk::bench::BenchJsonWriter simd_writer("simd_kernels");
  xk::bench::SplitTeeReporter reporter(&exec_writer, &simd_writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  exec_writer.WriteFile();
  simd_writer.WriteFile();
  benchmark::Shutdown();
  return 0;
}
