// Copyright (c) the XKeyword authors.
//
// A/B microbenchmarks for the vectorized execution path: row-at-a-time vs
// block-at-a-time variants of the filtered scan, the hash join (legacy
// unordered_map build vs flat open-addressing JoinHashTable), and the
// index-nested-loop join, over synthetic tables sized independently of the
// DBLP fixture. Every series point reports rows/sec so the speedup is a
// straight ratio of the row and block variants.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "exec/operators.h"
#include "exec/plan.h"

namespace xk::bench {
namespace {

using exec::ColumnInSet;
using exec::ColumnRef;
using exec::ExecOptions;
using exec::ForEachMatch;
using exec::HashJoinExecutor;
using exec::JoinQuery;
using exec::JoinStep;
using exec::NestedLoopExecutor;
using storage::ObjectId;
using storage::RowId;
using storage::Table;
using storage::Tuple;

/// Synthetic fixture, built once: a scan table with a ~50%-selective in-set
/// filter, and an equi-join pair with ~2 build rows per key (so hash-join
/// output stays linear in the input).
struct SyntheticTables {
  static SyntheticTables& Get() {
    static SyntheticTables* instance = new SyntheticTables();
    return *instance;
  }

  size_t scan_rows;
  size_t join_rows;
  std::unique_ptr<Table> scan;
  std::unique_ptr<Table> left;
  std::unique_ptr<Table> right;  // hash-indexed on column 0
  storage::IdSet keep;           // ~half of the scan table's value domain

 private:
  SyntheticTables() {
    const char* scale = std::getenv("XK_BENCH_SCALE");
    const bool tiny = scale != nullptr && std::string(scale) == "tiny";
    scan_rows = tiny ? 20'000 : 400'000;
    join_rows = tiny ? 5'000 : 100'000;

    Random rng(2003);
    constexpr ObjectId kScanDomain = 100;
    scan = std::make_unique<Table>("scan",
                                   std::vector<std::string>{"a", "b"});
    for (size_t i = 0; i < scan_rows; ++i) {
      XK_CHECK(scan->Append(Tuple{rng.Uniform(0, kScanDomain - 1),
                                  rng.Uniform(0, kScanDomain - 1)})
                   .ok());
    }
    for (ObjectId v = 0; v < kScanDomain; v += 2) keep.insert(v);

    const ObjectId join_domain = static_cast<ObjectId>(join_rows / 2);
    left = std::make_unique<Table>("left",
                                   std::vector<std::string>{"src", "dst"});
    right = std::make_unique<Table>("right",
                                    std::vector<std::string>{"src", "dst"});
    for (size_t i = 0; i < join_rows; ++i) {
      XK_CHECK(left->Append(Tuple{rng.Uniform(0, join_domain - 1),
                                  rng.Uniform(0, join_domain - 1)})
                   .ok());
      XK_CHECK(right->Append(Tuple{rng.Uniform(0, join_domain - 1),
                                   rng.Uniform(0, join_domain - 1)})
                   .ok());
    }
    XK_CHECK(right->BuildHashIndex(0).ok());
    scan->Freeze();
    left->Freeze();
    right->Freeze();
  }
};

/// left |><| right on right.src == left.dst, no local filters.
JoinQuery MakeJoinQuery(const SyntheticTables& t) {
  JoinQuery q;
  JoinStep s0;
  s0.table = t.left.get();
  q.steps.push_back(s0);
  JoinStep s1;
  s1.table = t.right.get();
  s1.eq.push_back({0, ColumnRef{0, 1}});
  q.steps.push_back(s1);
  return q;
}

void BM_Scan(benchmark::State& state, bool vectorized) {
  SyntheticTables& t = SyntheticTables::Get();
  ExecOptions opts;
  opts.use_indexes = false;
  opts.vectorized = vectorized;
  size_t matched = 0;
  for (auto _ : state) {
    size_t n = 0;
    ForEachMatch(*t.scan, {}, {ColumnInSet{0, &t.keep}}, opts,
                 [&](RowId) {
                   ++n;
                   return true;
                 },
                 nullptr);
    benchmark::DoNotOptimize(n);
    matched = n;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(t.scan_rows),
      benchmark::Counter::kIsRate);
  state.counters["matched"] = static_cast<double>(matched);
}

void BM_HashJoin(benchmark::State& state, bool vectorized) {
  SyntheticTables& t = SyntheticTables::Get();
  const JoinQuery q = MakeJoinQuery(t);
  ExecOptions opts;
  opts.vectorized = vectorized;
  size_t results = 0;
  for (auto _ : state) {
    HashJoinExecutor hj(&q, opts);
    size_t n = 0;
    XK_CHECK(hj.Run([&](const std::vector<storage::TupleView>&) {
                 ++n;
                 return true;
               })
                 .ok());
    benchmark::DoNotOptimize(n);
    results = n;
  }
  // Work per iteration: one pass over the probe side plus one over the build
  // side — identical for both variants, so rows/sec ratios are time ratios.
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(2 * t.join_rows),
      benchmark::Counter::kIsRate);
  state.counters["results"] = static_cast<double>(results);
}

void BM_InlJoin(benchmark::State& state, bool vectorized) {
  SyntheticTables& t = SyntheticTables::Get();
  const JoinQuery q = MakeJoinQuery(t);
  ExecOptions opts;
  opts.vectorized = vectorized;
  size_t results = 0;
  for (auto _ : state) {
    NestedLoopExecutor nl(&q, opts);
    size_t n = 0;
    XK_CHECK(nl.Run([&](const std::vector<storage::TupleView>&) {
                 ++n;
                 return true;
               })
                 .ok());
    benchmark::DoNotOptimize(n);
    results = n;
  }
  // Work per iteration: every driver row probed once through the hash index.
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(t.join_rows),
      benchmark::Counter::kIsRate);
  state.counters["results"] = static_cast<double>(results);
}

BENCHMARK_CAPTURE(BM_Scan, row, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Scan, block, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HashJoin, row, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HashJoin, block, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InlJoin, row, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InlJoin, block, true)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xk::bench

int main(int argc, char** argv) {
  return xk::bench::RunBenchMain("exec_vectorized", argc, argv);
}
