// Figure 16(a): speedup of the optimized (partial-result caching) execution
// algorithm over the naive nested-loops algorithm of DISCOVER/DBXplorer,
// versus the maximum CTSSN size. The paper: speedup < 1 at size 2 (caching
// overhead, negligible reuse), growing with the size as the number of
// trivially-recomputed inner subtrees explodes (up to ~80% time saved).
//
// Both algorithms produce the complete result stream of each network
// (single-threaded, minimal decomposition), exactly the setting of the
// paper's "search engine-like (non-interactive) presentation method".

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/naive_executor.h"
#include "engine/topk_executor.h"

namespace {

struct Point {
  double cached_ms = 0;
  double naive_ms = 0;
};
std::map<int, Point> g_points;

void BM_Execution(benchmark::State& state, bool cached) {
  auto& fixture = xk::bench::DblpBench::Get();
  const int max_size = static_cast<int>(state.range(0));
  const auto& prepared = fixture.Prepared("MinClust", /*z=*/8);

  xk::engine::QueryOptions options;
  options.max_size_z = 8;
  options.max_network_size = max_size;
  // Deep result streams (the search-engine presentation fills result pages
  // until K hits). Our synthetic citation graph is denser relative to its
  // size than real DBLP, so complete enumeration of the 5-6-edge networks
  // produces millions of rows; 5000 per network keeps runs tractable while
  // leaving plenty of recomputation for the cache to absorb.
  options.per_network_k = 5000;
  options.num_threads = 1;
  options.enable_cache = cached;

  uint64_t cache_hits = 0;
  xk::Stopwatch total;
  for (auto _ : state) {
    for (const xk::engine::PreparedQuery& q : prepared) {
      xk::engine::ExecutionStats stats;
      if (cached) {
        xk::engine::TopKExecutor executor;
        benchmark::DoNotOptimize(executor.Run(q, options, &stats));
      } else {
        xk::engine::NaiveExecutor executor;
        benchmark::DoNotOptimize(executor.Run(q, options, &stats));
      }
      cache_hits += stats.cache_hits;
    }
  }
  double per_iter_ms = total.ElapsedMillis() / static_cast<double>(state.iterations());
  (cached ? g_points[max_size].cached_ms : g_points[max_size].naive_ms) = per_iter_ms;
  state.counters["cache_hits"] = benchmark::Counter(
      static_cast<double>(cache_hits) / static_cast<double>(state.iterations()));
  state.SetLabel(cached ? "optimized" : "naive");
}

void RegisterAll() {
  for (bool cached : {false, true}) {
    auto* b = benchmark::RegisterBenchmark(
        cached ? "Fig16a/optimized" : "Fig16a/naive",
        [cached](benchmark::State& state) { BM_Execution(state, cached); });
    b->ArgName("maxCTSSN");
    for (int m : {2, 3, 4, 5, 6}) b->Arg(m);
    b->Unit(benchmark::kMillisecond);
    b->Iterations(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  xk::bench::BenchJsonWriter writer("fig16a");
  xk::bench::JsonTeeReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // The figure's series: speedup = naive / optimized per size.
  std::printf("\nFigure 16(a) series — speedup of caching over naive:\n");
  std::printf("%-12s %12s %12s %10s\n", "maxCTSSN", "naive(ms)", "cached(ms)",
              "speedup");
  for (const auto& [size, p] : g_points) {
    if (p.cached_ms <= 0) continue;
    std::printf("%-12d %12.2f %12.2f %9.2fx\n", size, p.naive_ms, p.cached_ms,
                p.naive_ms / p.cached_ms);
    writer.AddRecord("Fig16a/speedup/maxCTSSN:" + std::to_string(size),
                     p.cached_ms * 1e6, {{"speedup", p.naive_ms / p.cached_ms}});
  }
  writer.WriteFile();
  benchmark::Shutdown();
  return 0;
}
