// Closed-loop throughput bench for the socket serving front-end: C loopback
// connections each submit a query over the wire, read streamed batches until
// the final frame, and immediately submit the next one, against one
// xk::net::Server wrapping a QueryService on the shared DBLP engine.
// Reported per series point (and in BENCH_net.json):
//
//   qps        — completed queries per wall-clock second across all clients
//   p50_us     — median end-to-end latency (send → final frame), microseconds
//   p99_us     — tail latency, microseconds
//   rejected   — queries shed by the admission queue (kResourceExhausted)
//   streamed_batches / streamed_bytes — incremental kBatch traffic
//
// Series: Net/C:<connections>/W:4 scales concurrent connections against a
// fixed worker pool (the C:64 point is the headline ≥64-connection run);
// NetOverload drives 64 connections into a one-worker, two-slot queue so the
// per-connection error path is exercised under load; NetSlowClient/slow:{on,
// off} is the backpressure A/B — a deliberately slow reader streams a large
// top-k result through a small outbox while fast clients run the closed loop,
// and its presence must not move the fast clients' throughput (the stall is
// confined to the slow connection's own query).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

namespace {

using xk::bench::DblpBench;
using xk::engine::QueryRequest;
using xk::net::Client;
using xk::net::Server;
using xk::net::ServerOptions;
using xk::service::MetricsSnapshot;
using xk::service::QueryService;
using xk::service::QueryServiceOptions;

struct NetLoopSetup {
  int connections = 4;
  int workers = 4;
  size_t queue_capacity = 256;
  int queries_per_connection = 20;
  /// Adds one extra connection running a large streaming query whose reader
  /// sleeps between frames, against a small outbox: the backpressure path.
  bool slow_client = false;
  size_t outbox_capacity_bytes = 4u << 20;
};

QueryRequest MakeRequest(const std::vector<std::string>& keywords) {
  QueryRequest request;
  request.keywords = keywords;
  request.decomposition = "XKeyword";
  request.options.max_size_z = 6;
  request.options.per_network_k = 10;
  // Closed loop: every query must actually execute (and stream).
  request.cache_mode = xk::engine::CacheMode::kBypass;
  return request;
}

/// The slow reader's query: unbounded top-k over the full network space, so
/// the server has many batches to stream into the throttled connection.
QueryRequest MakeStreamingRequest() {
  QueryRequest request;
  request.keywords = {"gray", "codd"};
  request.decomposition = "XKeyword";
  request.mode = xk::engine::QueryMode::kTopK;
  request.options.max_size_z = 6;
  request.options.per_network_k = 1000000;
  request.cache_mode = xk::engine::CacheMode::kBypass;
  return request;
}

double Percentile(std::vector<double>* latencies_us, double p) {
  if (latencies_us->empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::min<double>(static_cast<double>(latencies_us->size()) - 1,
                       std::ceil(p * static_cast<double>(latencies_us->size())) - 1));
  std::nth_element(latencies_us->begin(), latencies_us->begin() + static_cast<long>(rank),
                   latencies_us->end());
  return (*latencies_us)[rank];
}

void BM_NetClosedLoop(benchmark::State& state, const NetLoopSetup& setup) {
  auto& fixture = DblpBench::Get();
  const auto& queries = fixture.queries();

  QueryServiceOptions service_options;
  service_options.num_workers = setup.workers;
  service_options.queue_capacity = setup.queue_capacity;
  ServerOptions server_options;
  server_options.outbox_capacity_bytes = setup.outbox_capacity_bytes;

  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t streamed_batches = 0, streamed_bytes = 0;
  uint64_t slow_batches = 0;
  std::vector<double> latencies_us;

  for (auto _ : state) {
    auto service =
        QueryService::Create(&fixture.xk(), service_options).MoveValueUnsafe();
    auto server = Server::Start(service.get(), server_options).MoveValueUnsafe();
    const uint16_t port = server->port();

    std::mutex merge_mutex;
    std::atomic<uint64_t> ok_count{0};
    std::atomic<uint64_t> rejected_count{0};

    // The slow reader starts first and keeps draining (throttled) for the
    // whole measurement window: its stalled outbox must not leak into the
    // fast clients' closed loop below.
    std::atomic<bool> stop_slow{false};
    std::thread slow;
    if (setup.slow_client) {
      slow = std::thread([&] {
        auto client = Client::Connect(port);
        if (!client.ok()) return;
        while (!stop_slow.load(std::memory_order_relaxed)) {
          auto id = client.value().SendQuery(MakeStreamingRequest());
          if (!id.ok()) return;
          while (true) {
            auto event = client.value().ReadEvent();
            if (!event.ok()) return;
            if (event.value().kind == Client::Event::Kind::kBatch) {
              slow_batches += event.value().batch.size() > 0 ? 1 : 0;
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              continue;
            }
            break;  // final or error: issue the next streaming query
          }
        }
      });
    }

    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(setup.connections));
    for (int c = 0; c < setup.connections; ++c) {
      clients.emplace_back([&, c] {
        auto client = Client::Connect(port);
        if (!client.ok()) return;
        std::vector<double> local_us;
        local_us.reserve(static_cast<size_t>(setup.queries_per_connection));
        for (int i = 0; i < setup.queries_per_connection; ++i) {
          const auto start = std::chrono::steady_clock::now();
          auto response = client.value().Run(
              MakeRequest(queries[static_cast<size_t>(c + i) % queries.size()]));
          const auto elapsed = std::chrono::steady_clock::now() - start;
          if (response.ok() && response.value().status.ok()) {
            ok_count.fetch_add(1, std::memory_order_relaxed);
            local_us.push_back(
                std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                    .count());
          } else {
            // Admission shed (kError frame) — the connection survives and
            // the loop presses on, as a real client would under overload.
            rejected_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        latencies_us.insert(latencies_us.end(), local_us.begin(),
                            local_us.end());
      });
    }
    for (std::thread& t : clients) t.join();
    stop_slow.store(true, std::memory_order_relaxed);
    if (slow.joinable()) slow.join();

    completed += ok_count.load();
    rejected += rejected_count.load();
    const MetricsSnapshot snap = service->metrics().Snapshot();
    streamed_batches += snap.streamed_batches;
    streamed_bytes += snap.streamed_bytes;
    server->Stop();
  }

  state.counters["qps"] = benchmark::Counter(static_cast<double>(completed),
                                             benchmark::Counter::kIsRate);
  state.counters["p50_us"] = benchmark::Counter(Percentile(&latencies_us, 0.50));
  state.counters["p99_us"] = benchmark::Counter(Percentile(&latencies_us, 0.99));
  state.counters["rejected"] = benchmark::Counter(static_cast<double>(rejected));
  state.counters["streamed_batches"] =
      benchmark::Counter(static_cast<double>(streamed_batches));
  state.counters["streamed_bytes"] =
      benchmark::Counter(static_cast<double>(streamed_bytes));
  if (setup.slow_client) {
    state.counters["slow_batches"] =
        benchmark::Counter(static_cast<double>(slow_batches));
  }
  state.SetLabel(std::to_string(setup.connections) + " connections / " +
                 std::to_string(setup.workers) + " workers" +
                 (setup.slow_client ? " + 1 slow reader" : ""));
}

void RegisterAll() {
  // Connection scaling against a fixed pool; C:64 is the headline
  // concurrent-loopback-connection run.
  for (int connections : {8, 64, 128}) {
    NetLoopSetup setup;
    setup.connections = connections;
    setup.queries_per_connection = connections >= 64 ? 10 : 20;
    auto* b = benchmark::RegisterBenchmark(
        ("Net/C:" + std::to_string(connections) + "/W:4").c_str(),
        [setup](benchmark::State& state) { BM_NetClosedLoop(state, setup); });
    b->Unit(benchmark::kMillisecond);
    b->Iterations(2);
    b->UseRealTime();
  }

  // Overload: 64 connections into one worker and two queue slots; admission
  // rejections surface as per-connection kError frames, and the connections
  // must survive them.
  NetLoopSetup overload;
  overload.connections = 64;
  overload.workers = 1;
  overload.queue_capacity = 2;
  overload.queries_per_connection = 5;
  auto* b = benchmark::RegisterBenchmark(
      "NetOverload/C:64/W:1", [overload](benchmark::State& state) {
        BM_NetClosedLoop(state, overload);
      });
  b->Unit(benchmark::kMillisecond);
  b->Iterations(2);
  b->UseRealTime();

  // Backpressure A/B: slow:on adds one throttled reader streaming a large
  // top-k result through a 64 KiB outbox. Its qps against slow:off is the
  // isolation check — a stalled outbox blocks only its own query.
  for (bool slow : {false, true}) {
    NetLoopSetup ab;
    ab.connections = 8;
    ab.queries_per_connection = 20;
    ab.slow_client = slow;
    ab.outbox_capacity_bytes = 64u << 10;
    auto* s = benchmark::RegisterBenchmark(
        slow ? "NetSlowClient/slow:on" : "NetSlowClient/slow:off",
        [ab](benchmark::State& state) { BM_NetClosedLoop(state, ab); });
    s->Unit(benchmark::kMillisecond);
    s->Iterations(2);
    s->UseRealTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return xk::bench::RunBenchMain("net", argc, argv);
}
