// Ablation A4 — storage substrate microbenchmarks: the four physical access
// paths (clustered range, composite index, hash index, full scan) on a
// citation-sized connection relation, plus join-executor throughput. These
// are the primitive costs behind every Section-7 curve.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "storage/table.h"

namespace {

using xk::exec::ColumnBinding;
using xk::exec::ExecOptions;
using xk::exec::ForEachMatch;
using xk::storage::ObjectId;
using xk::storage::Table;
using xk::storage::Tuple;

enum class Physical { kClustered, kComposite, kHash, kNone };

std::unique_ptr<Table> MakeTable(Physical physical, int rows, int domain) {
  auto t = std::make_unique<Table>("edges", std::vector<std::string>{"src", "dst"});
  xk::Random rng(42);
  for (int i = 0; i < rows; ++i) {
    XK_CHECK(t->Append(Tuple{rng.Uniform(0, domain - 1), rng.Uniform(0, domain - 1)})
                 .ok());
  }
  switch (physical) {
    case Physical::kClustered:
      XK_CHECK(t->Cluster({0, 1}).ok());
      break;
    case Physical::kComposite:
      XK_CHECK(t->BuildCompositeIndex({0, 1}).ok());
      break;
    case Physical::kHash:
      XK_CHECK(t->BuildHashIndex(0).ok());
      break;
    case Physical::kNone:
      break;
  }
  t->Freeze();
  return t;
}

constexpr int kRows = 200000;
constexpr int kDomain = 10000;

void BM_Probe(benchmark::State& state, Physical physical) {
  auto table = MakeTable(physical, kRows, kDomain);
  ExecOptions options;
  options.use_indexes = physical != Physical::kNone;
  xk::Random rng(7);
  uint64_t matched = 0;
  for (auto _ : state) {
    ObjectId key = rng.Uniform(0, kDomain - 1);
    ForEachMatch(*table, {ColumnBinding{0, key}}, {}, options,
                 [&](xk::storage::RowId) {
                   ++matched;
                   return true;
                 },
                 nullptr);
  }
  state.counters["rows/probe"] = benchmark::Counter(
      static_cast<double>(matched) / static_cast<double>(state.iterations()));
}

void BM_Join(benchmark::State& state, bool hash_join) {
  auto left = MakeTable(Physical::kHash, kRows / 4, kDomain);
  auto right = MakeTable(Physical::kHash, kRows / 4, kDomain);
  xk::exec::JoinQuery query;
  query.steps.push_back(xk::exec::JoinStep{left.get(), {}, {}, {}});
  xk::exec::JoinStep step2;
  step2.table = right.get();
  step2.eq.push_back({0, xk::exec::ColumnRef{0, 1}});
  query.steps.push_back(step2);

  uint64_t rows = 0;
  for (auto _ : state) {
    if (hash_join) {
      xk::exec::HashJoinExecutor executor(&query);
      XK_CHECK(executor
                   .Run([&](const std::vector<xk::storage::TupleView>&) {
                     ++rows;
                     return true;
                   })
                   .ok());
    } else {
      xk::exec::NestedLoopExecutor executor(&query, ExecOptions{});
      XK_CHECK(executor
                   .Run([&](const std::vector<xk::storage::TupleView>&) {
                     ++rows;
                     return true;
                   })
                   .ok());
    }
  }
  state.counters["out_rows"] = benchmark::Counter(
      static_cast<double>(rows) / static_cast<double>(state.iterations()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Probe, clustered_range, Physical::kClustered);
BENCHMARK_CAPTURE(BM_Probe, composite_index, Physical::kComposite);
BENCHMARK_CAPTURE(BM_Probe, hash_index, Physical::kHash);
BENCHMARK_CAPTURE(BM_Probe, full_scan, Physical::kNone)->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_Join, index_nested_loop, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Join, hash_join, true)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return xk::bench::RunBenchMain("storage", argc, argv);
}
