// Figure 15(a): average time to output the top-K results of each candidate
// network, per decomposition. The paper's series: XKeyword fastest, then
// MinClust; Complete slower than MinClust despite fewer joins (huge MVD
// relations); non-clustered decompositions poor (MinNClustNIndx is an order
// of magnitude worse still and omitted there, included here for reference).
//
// Workload: DBLP, 2-keyword author queries, Z = 8 (paper Section 7).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/topk_executor.h"

namespace {

void BM_TopK(benchmark::State& state, const std::string& decomposition) {
  auto& fixture = xk::bench::DblpBench::Get();
  const size_t k = static_cast<size_t>(state.range(0));
  const auto& prepared = fixture.Prepared(decomposition, /*z=*/8);

  xk::engine::QueryOptions options;
  options.max_size_z = 8;
  // The paper's setting: CTSSN sizes up to M = f(Z) = 6. (Our reduction can
  // emit a few size-7 shapes from Z = 8 networks; they explode fruitlessly.)
  options.max_network_size = 6;
  options.per_network_k = k;
  // Single-threaded: the per-CN thread pool improves first-result latency on
  // slow back ends; at in-memory microsecond scale, pool spawn would dominate
  // the measurement.
  options.num_threads = 1;

  uint64_t results = 0;
  uint64_t probes = 0;
  for (auto _ : state) {
    for (const xk::engine::PreparedQuery& q : prepared) {
      xk::engine::ExecutionStats stats;
      xk::engine::TopKExecutor executor;
      auto r = executor.Run(q, options, &stats);
      benchmark::DoNotOptimize(r);
      results += stats.results;
      probes += stats.probes.probes;
    }
  }
  state.counters["results/query"] = benchmark::Counter(
      static_cast<double>(results) /
      static_cast<double>(state.iterations() * prepared.size()));
  state.counters["probes/query"] = benchmark::Counter(
      static_cast<double>(probes) /
      static_cast<double>(state.iterations() * prepared.size()));
  state.SetLabel(decomposition);
}

void RegisterAll() {
  // MinNClustNIndx is omitted exactly as in the paper ("the results for
  // MinNClustNIndx are not shown, because they are worse by an order of
  // magnitude"); bench_fig15b includes it where it wins.
  for (const char* decomposition :
       {"XKeyword", "Complete", "MinClust", "MinNClustIndx"}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig15a/") + decomposition).c_str(),
        [decomposition](benchmark::State& state) { BM_TopK(state, decomposition); });
    b->ArgName("K");
    for (int k : {1, 5, 10, 20, 50, 100}) b->Arg(k);
    b->Unit(benchmark::kMillisecond);
    b->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
