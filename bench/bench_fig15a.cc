// Figure 15(a): average time to output the top-K results of each candidate
// network, per decomposition. The paper's series: XKeyword fastest, then
// MinClust; Complete slower than MinClust despite fewer joins (huge MVD
// relations); non-clustered decompositions poor (MinNClustNIndx is an order
// of magnitude worse still and omitted there, included here for reference).
//
// Workload: DBLP, 2-keyword author queries, Z = 8 (paper Section 7).
//
// Two engine-side series beyond the paper's figure:
//   Fig15aPar/*    — morsel-driven intra-plan parallelism (T = worker
//                    threads), byte-identical results to T = 1;
//   Fig15aPrune/*  — semi-join Bloom pruning on/off (rows_scanned drops,
//                    bloom_skips counts rejected probes).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/topk_executor.h"

namespace {

struct TopKSetup {
  std::string decomposition;
  int intra_plan_threads = 1;
  bool semijoin_pruning = true;
  bool vectorized = true;
};

void BM_TopK(benchmark::State& state, const TopKSetup& setup, size_t k,
             const std::string& label) {
  auto& fixture = xk::bench::DblpBench::Get();
  const auto& prepared = fixture.Prepared(setup.decomposition, /*z=*/8);

  xk::engine::QueryOptions options;
  options.max_size_z = 8;
  // The paper's setting: CTSSN sizes up to M = f(Z) = 6. (Our reduction can
  // emit a few size-7 shapes from Z = 8 networks; they explode fruitlessly.)
  options.max_network_size = 6;
  options.per_network_k = k;
  // Single-threaded across plans: the per-CN thread pool improves
  // first-result latency on slow back ends; at in-memory microsecond scale,
  // pool spawn would dominate the measurement. Intra-plan morsels share one
  // pool per executor run instead.
  options.num_threads = 1;
  options.intra_plan_threads = setup.intra_plan_threads;
  options.enable_semijoin_pruning = setup.semijoin_pruning;
  options.vectorized = setup.vectorized;

  uint64_t results = 0;
  uint64_t probes = 0;
  uint64_t rows_scanned = 0;
  uint64_t bloom_skips = 0;
  for (auto _ : state) {
    for (const xk::engine::PreparedQuery& q : prepared) {
      xk::engine::ExecutionStats stats;
      xk::engine::TopKExecutor executor;
      auto r = executor.Run(q, options, &stats);
      benchmark::DoNotOptimize(r);
      results += stats.results;
      probes += stats.probes.probes;
      rows_scanned += stats.probes.rows_scanned;
      bloom_skips += stats.probes.bloom_skips;
    }
  }
  const double per_query =
      static_cast<double>(state.iterations() * prepared.size());
  state.counters["results/query"] =
      benchmark::Counter(static_cast<double>(results) / per_query);
  state.counters["probes/query"] =
      benchmark::Counter(static_cast<double>(probes) / per_query);
  state.counters["rows_scanned"] =
      benchmark::Counter(static_cast<double>(rows_scanned) / per_query);
  state.counters["bloom_skips"] =
      benchmark::Counter(static_cast<double>(bloom_skips) / per_query);
  state.SetLabel(label);
}

void RegisterAll() {
  // MinNClustNIndx is omitted exactly as in the paper ("the results for
  // MinNClustNIndx are not shown, because they are worse by an order of
  // magnitude"); bench_fig15b includes it where it wins.
  for (const char* decomposition :
       {"XKeyword", "Complete", "MinClust", "MinNClustIndx"}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig15a/") + decomposition).c_str(),
        [decomposition](benchmark::State& state) {
          BM_TopK(state, TopKSetup{decomposition},
                  static_cast<size_t>(state.range(0)), decomposition);
        });
    b->ArgName("K");
    for (int k : {1, 5, 10, 20, 50, 100}) b->Arg(k);
    b->Unit(benchmark::kMillisecond);
    b->Iterations(3);
  }

  // Morsel-driven intra-plan parallelism, deep per-network result streams
  // (big K keeps every plan busy long enough for the fan-out to pay off).
  for (const char* decomposition : {"MinClust", "MinNClustIndx"}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig15aPar/") + decomposition).c_str(),
        [decomposition](benchmark::State& state) {
          TopKSetup setup{decomposition};
          setup.intra_plan_threads = static_cast<int>(state.range(0));
          BM_TopK(state, setup, /*k=*/5000, decomposition);
        });
    b->ArgName("T");
    for (int t : {1, 2, 4}) b->Arg(t);
    b->Unit(benchmark::kMillisecond);
    b->Iterations(2);
  }

  // Vectorized batch execution ablation at K = 100: V:0 is the row-at-a-time
  // engine, V:1 the RowBlock path (results byte-identical).
  for (const char* decomposition : {"MinClust", "MinNClustIndx"}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig15aVec/") + decomposition).c_str(),
        [decomposition](benchmark::State& state) {
          TopKSetup setup{decomposition};
          setup.vectorized = state.range(0) != 0;
          BM_TopK(state, setup, /*k=*/100,
                  setup.vectorized ? "block" : "row");
        });
    b->ArgName("V");
    b->Arg(0);
    b->Arg(1);
    b->Unit(benchmark::kMillisecond);
    b->Iterations(3);
  }

  // Semi-join Bloom pruning ablation at the paper's K = 100 point.
  for (bool prune : {false, true}) {
    auto* b = benchmark::RegisterBenchmark(
        prune ? "Fig15aPrune/on" : "Fig15aPrune/off",
        [prune](benchmark::State& state) {
          TopKSetup setup{"MinClust"};
          setup.semijoin_pruning = prune;
          BM_TopK(state, setup, /*k=*/100, prune ? "pruned" : "unpruned");
        });
    b->Unit(benchmark::kMillisecond);
    b->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return xk::bench::RunBenchMain("fig15a", argc, argv);
}
