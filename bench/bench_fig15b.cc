// Figure 15(b): average time to output ALL results of each candidate
// network, versus the maximum CTSSN size, per decomposition. The paper's
// finding: MinNClustNIndx — full scans + hash joins on the small minimal
// relations — is fastest for complete outputs, while the indexed
// decompositions (whose DBMS plans go through index nested loops / bigger
// redundant relations) fall behind.
//
// Workload: DBLP, 2-keyword author queries, Z = 8, size cap swept 2..6.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/full_executor.h"

namespace {

void BM_CompleteEnumeration(benchmark::State& state, const std::string& decomposition) {
  auto& fixture = xk::bench::DblpBench::Get();
  const int max_size = static_cast<int>(state.range(0));
  const auto& prepared = fixture.Prepared(decomposition, /*z=*/8);

  xk::engine::QueryOptions options;
  options.max_network_size = max_size;

  uint64_t results = 0;
  uint64_t rows_scanned = 0;
  uint64_t bloom_skips = 0;
  for (auto _ : state) {
    for (const xk::engine::PreparedQuery& q : prepared) {
      xk::engine::ExecutionStats stats;
      xk::engine::FullExecutor executor(options);
      auto r = executor.Run(q, &stats);
      benchmark::DoNotOptimize(r);
      results += stats.results;
      rows_scanned += stats.probes.rows_scanned;
      bloom_skips += stats.probes.bloom_skips;
    }
  }
  const double per_query =
      static_cast<double>(state.iterations() * prepared.size());
  state.counters["results/query"] =
      benchmark::Counter(static_cast<double>(results) / per_query);
  state.counters["rows_scanned"] =
      benchmark::Counter(static_cast<double>(rows_scanned) / per_query);
  state.counters["bloom_skips"] =
      benchmark::Counter(static_cast<double>(bloom_skips) / per_query);
  state.SetLabel(decomposition);
}

void RegisterAll() {
  for (const char* decomposition :
       {"XKeyword", "Complete", "MinClust", "MinNClustIndx", "MinNClustNIndx"}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig15b/") + decomposition).c_str(),
        [decomposition](benchmark::State& state) {
          BM_CompleteEnumeration(state, decomposition);
        });
    b->ArgName("maxCTSSN");
    // Size 6 is omitted: complete enumeration there yields ~4M results per
    // query on our (denser-than-DBLP) citation graph — minutes per series
    // point without changing the ordering visible at size 5.
    for (int m : {2, 3, 4, 5}) b->Arg(m);
    b->Unit(benchmark::kMillisecond);
    b->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return xk::bench::RunBenchMain("fig15b", argc, argv);
}
