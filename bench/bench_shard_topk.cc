// Sharded scatter-gather top-k bench: the standard DBLP author workload run
// through engine::ShardedEngine (8 physical slices). Reported per series
// point (and in BENCH_shard_topk.json):
//
//   qps               — queries per wall-clock second
//   rows_per_query    — probe rows examined per query (scan + join work)
//   prunes_per_query  — step-0 driver rows the gather watermark proved
//                       irrelevant, so the shards never evaluated them
//   early_stops       — shard loops that terminated before exhausting their
//                       driver slice, per query
//
// Series:
//   ShardTopK/S:{1,2,4,8}        — the shard-count scaling curve at
//                                  per_network_k = 100 (enumeration-heavy, so
//                                  the scatter has parallel work to win on);
//                                  S:1 is the single-engine serial baseline
//                                  the others' qps is compared against.
//   ShardPushdown/S:4/pd:{on,off} — watermark bound-pushdown A/B at
//                                  per_network_k = 10: pd:on must examine
//                                  measurably fewer rows per query.
//
// A summary table after the runs prints the speedup of each shard count over
// S:1 and the pushdown row savings, and appends both to the JSON sidecar.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/sharded_engine.h"

namespace {

using xk::bench::BenchJsonWriter;
using xk::bench::DblpBench;
using xk::bench::JsonTeeReporter;
using xk::bench::ShardedDblpBench;
using xk::engine::QueryMode;
using xk::engine::QueryRequest;
using xk::engine::QueryResponse;

QueryRequest MakeRequest(const std::vector<std::string>& keywords,
                         int num_shards, bool pushdown, size_t per_network_k) {
  QueryRequest request;
  request.keywords = keywords;
  request.decomposition = "XKeyword";
  request.mode = QueryMode::kTopK;
  request.options.max_size_z = 6;
  request.options.per_network_k = per_network_k;
  // Serial inner execution: all parallelism in this bench comes from the
  // scatter stage, so the S:1 arm is the single-engine serial baseline.
  request.options.num_threads = 1;
  request.options.num_shards = num_shards;
  request.options.shard_bound_pushdown = pushdown;
  return request;
}

struct Point {
  double qps = 0;
  double rows_per_query = 0;
};
std::map<int, Point> g_scaling;          // shard count -> point
std::map<bool, Point> g_pushdown;        // pushdown on/off -> point

void BM_ShardTopK(benchmark::State& state, int num_shards, bool pushdown,
                  size_t per_network_k, bool scaling_series) {
  const auto& engine = ShardedDblpBench::Get().engine();
  const auto& queries = DblpBench::Get().queries();

  uint64_t executed = 0;
  uint64_t rows = 0, prunes = 0, early_stops = 0, results = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (const auto& q : queries) {
      auto response =
          engine.Run(MakeRequest(q, num_shards, pushdown, per_network_k));
      XK_CHECK(response.ok());
      const QueryResponse& r = response.value();
      rows += r.stats.probes.rows_scanned;
      prunes += r.stats.shard_bound_prunes;
      early_stops += r.stats.shard_early_stops;
      results += r.stats.results;
      ++executed;
      benchmark::DoNotOptimize(r.mttons.size());
    }
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const double n = static_cast<double>(executed);
  state.counters["qps"] =
      benchmark::Counter(n, benchmark::Counter::kIsRate);
  state.counters["rows_per_query"] =
      benchmark::Counter(n > 0 ? static_cast<double>(rows) / n : 0);
  state.counters["prunes_per_query"] =
      benchmark::Counter(n > 0 ? static_cast<double>(prunes) / n : 0);
  state.counters["early_stops"] =
      benchmark::Counter(n > 0 ? static_cast<double>(early_stops) / n : 0);
  state.counters["results_per_query"] =
      benchmark::Counter(n > 0 ? static_cast<double>(results) / n : 0);

  // Wall-clock rates for the summary table (benchmark's own rate counters
  // cover the sidecar; the table compares arms, so one consistent clock
  // spanning each arm's full run is what matters).
  Point point;
  point.qps = seconds > 0 ? n / seconds : 0;
  point.rows_per_query = n > 0 ? static_cast<double>(rows) / n : 0;
  if (scaling_series) {
    g_scaling[num_shards] = point;
  } else {
    g_pushdown[pushdown] = point;
  }
}

void RegisterAll() {
  for (int shards : {1, 2, 4, 8}) {
    auto* b = benchmark::RegisterBenchmark(
        ("ShardTopK/S:" + std::to_string(shards)).c_str(),
        [shards](benchmark::State& state) {
          BM_ShardTopK(state, shards, /*pushdown=*/true, /*per_network_k=*/100,
                       /*scaling_series=*/true);
        });
    b->Unit(benchmark::kMillisecond);
    b->UseRealTime();
  }
  for (bool pushdown : {true, false}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("ShardPushdown/S:4/pd:") + (pushdown ? "on" : "off"))
            .c_str(),
        [pushdown](benchmark::State& state) {
          BM_ShardTopK(state, /*num_shards=*/4, pushdown, /*per_network_k=*/10,
                       /*scaling_series=*/false);
        });
    b->Unit(benchmark::kMillisecond);
    b->UseRealTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJsonWriter writer("shard_topk");
  JsonTeeReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Scaling summary: speedup of each shard count over the serial S:1 arm.
  if (g_scaling.count(1) != 0 && g_scaling[1].qps > 0) {
    std::printf("\nShard scaling — top-k throughput vs the serial engine:\n");
    std::printf("%-8s %14s %14s\n", "shards", "speedup", "rows/query");
    for (const auto& [shards, p] : g_scaling) {
      const double speedup = p.qps / g_scaling[1].qps;
      std::printf("%-8d %13.2fx %14.0f\n", shards, speedup, p.rows_per_query);
      writer.AddRecord("ShardScaling/S:" + std::to_string(shards), 0,
                       {{"speedup", speedup},
                        {"rows_per_query", p.rows_per_query}});
    }
  }
  if (g_pushdown.count(true) != 0 && g_pushdown.count(false) != 0 &&
      g_pushdown[false].rows_per_query > 0) {
    const double saved = 1.0 - g_pushdown[true].rows_per_query /
                                   g_pushdown[false].rows_per_query;
    std::printf("\nBound pushdown at 4 shards: %.0f rows/query -> %.0f "
                "(%.1f%% fewer)\n",
                g_pushdown[false].rows_per_query,
                g_pushdown[true].rows_per_query, 100.0 * saved);
    writer.AddRecord("ShardPushdownSavings/S:4", 0,
                     {{"rows_saved_fraction", saved},
                      {"rows_on", g_pushdown[true].rows_per_query},
                      {"rows_off", g_pushdown[false].rows_per_query}});
  }
  writer.WriteFile();
  benchmark::Shutdown();
  return 0;
}
