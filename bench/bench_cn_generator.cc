// Ablation A2 — candidate network generation (the DISCOVER-extension of
// Section 4): throughput and network counts versus the size bound Z and the
// number of keywords, on the DBLP schema.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cn/cn_generator.h"
#include "cn/ctssn.h"

namespace {

void BM_Generate(benchmark::State& state) {
  auto& fixture = xk::bench::DblpBench::Get();
  const int z = static_cast<int>(state.range(0));
  const int keywords = static_cast<int>(state.range(1));

  // Keywords on author names (and titles for the 3rd keyword).
  const xk::schema::SchemaGraph& schema = fixture.db().schema();
  xk::schema::SchemaNodeId author = *schema.NodeByUniqueLabel("author");
  xk::schema::SchemaNodeId title = *schema.NodeByUniqueLabel("title");
  std::vector<std::vector<xk::schema::SchemaNodeId>> keyword_nodes;
  for (int k = 0; k < keywords; ++k) {
    keyword_nodes.push_back(k % 2 == 0 ? std::vector<xk::schema::SchemaNodeId>{author}
                                       : std::vector<xk::schema::SchemaNodeId>{
                                             author, title});
  }

  xk::cn::CnGeneratorOptions options;
  options.max_size = z;
  xk::cn::CnGenerator generator(&schema, options);

  size_t networks = 0;
  for (auto _ : state) {
    auto cns = generator.Generate(keyword_nodes);
    benchmark::DoNotOptimize(cns);
    networks = cns.ok() ? cns->size() : 0;
  }
  state.counters["networks"] = benchmark::Counter(static_cast<double>(networks));
}

void BM_Reduce(benchmark::State& state) {
  auto& fixture = xk::bench::DblpBench::Get();
  const xk::schema::SchemaGraph& schema = fixture.db().schema();
  xk::schema::SchemaNodeId author = *schema.NodeByUniqueLabel("author");
  xk::cn::CnGeneratorOptions options;
  options.max_size = static_cast<int>(state.range(0));
  xk::cn::CnGenerator generator(&schema, options);
  auto cns = generator.Generate({{author}, {author}});
  XK_CHECK(cns.ok());

  for (auto _ : state) {
    for (const xk::cn::CandidateNetwork& cn : *cns) {
      auto reduced = xk::cn::ReduceToCtssn(cn, schema, fixture.db().tss());
      benchmark::DoNotOptimize(reduced);
    }
  }
  state.counters["networks"] = benchmark::Counter(static_cast<double>(cns->size()));
}

}  // namespace

BENCHMARK(BM_Generate)
    ->ArgNames({"Z", "keywords"})
    ->Args({4, 2})
    ->Args({6, 2})
    ->Args({8, 2})
    ->Args({4, 3})
    ->Args({6, 3})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Reduce)->ArgName("Z")->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return xk::bench::RunBenchMain("cn_generator", argc, argv);
}
