// Ablation A5 — common-subexpression reuse across candidate networks
// (Section 4's optimizer decision (b)): full-result execution with and
// without the shared materialization of keyword-filtered relation scans.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/full_executor.h"

namespace {

void BM_FullResults(benchmark::State& state, bool reuse) {
  auto& fixture = xk::bench::DblpBench::Get();
  const auto& prepared = fixture.Prepared("MinNClustNIndx", /*z=*/8);

  xk::engine::QueryOptions options;
  options.full_mode = xk::engine::FullMode::kHashJoin;
  options.enable_scan_reuse = reuse;
  options.max_network_size = static_cast<int>(state.range(0));

  uint64_t reuse_hits = 0;
  uint64_t probes = 0;
  uint64_t subplan_hits = 0;
  uint64_t saved_rows = 0;
  for (auto _ : state) {
    for (const xk::engine::PreparedQuery& q : prepared) {
      xk::engine::ExecutionStats stats;
      xk::engine::FullExecutor executor(options);
      benchmark::DoNotOptimize(executor.Run(q, &stats));
      reuse_hits += stats.reuse_hits;
      probes += stats.probes.probes;
      subplan_hits += stats.subplan_hits;
      saved_rows += stats.dedup_saved_rows;
    }
  }
  state.counters["reuse_hits"] = benchmark::Counter(
      static_cast<double>(reuse_hits) / static_cast<double>(state.iterations()));
  state.counters["scans"] = benchmark::Counter(
      static_cast<double>(probes) / static_cast<double>(state.iterations()));
  // Cross-CN join-prefix memoization (the plan-DAG layer above scan reuse).
  state.counters["subplan_hits"] = benchmark::Counter(
      static_cast<double>(subplan_hits) / static_cast<double>(state.iterations()));
  state.counters["dedup_saved_rows"] = benchmark::Counter(
      static_cast<double>(saved_rows) / static_cast<double>(state.iterations()));
  state.SetLabel(reuse ? "with reuse" : "no reuse");
}

}  // namespace

BENCHMARK_CAPTURE(BM_FullResults, with_reuse, true)
    ->ArgName("maxCTSSN")
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullResults, no_reuse, false)
    ->ArgName("maxCTSSN")
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return xk::bench::RunBenchMain("reuse", argc, argv);
}
