// Figure 16(b): average time to expand a Paper node of the presentation
// graph for the networks Author^k1 - Paper (- Paper)* - Author^k2, under
// three decompositions: the inlined (non-MVD, Figure-12) decomposition, the
// minimal decomposition, and their combination. The paper: the combination
// wins for networks larger than 2; minimal is slightly better at size 2
// (DBMS caching of the tiny relations); inlined trails because the
// adjacent-node checks go through wide relations.
//
// "We use keyword queries that involve the names of two authors ... More
// internal Paper nodes are added for bigger sizes."

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/expansion.h"
#include "engine/topk_executor.h"
#include "present/presentation_graph.h"

namespace {

using xk::engine::PreparedQuery;

/// Finds the author-paper-chain network with `chain_edges` CTSSN edges
/// (2 = A-P-A, 3 = A-P-P-A, 4 = A-P-P-P-A); -1 if absent.
int FindChainNetwork(const PreparedQuery& q, const xk::schema::TssGraph& tss,
                     int chain_edges) {
  xk::schema::TssId author = *tss.SegmentByName("Author");
  xk::schema::TssId paper = *tss.SegmentByName("Paper");
  for (size_t i = 0; i < q.ctssns.size(); ++i) {
    const xk::cn::Ctssn& c = q.ctssns[i];
    if (c.tree.size() != chain_edges) continue;
    int authors = 0;
    int papers = 0;
    bool other = false;
    for (xk::schema::TssId t : c.tree.nodes) {
      if (t == author) ++authors;
      else if (t == paper) ++papers;
      else other = true;
    }
    if (other || authors != 2 || papers != chain_edges - 1) continue;
    // Path shape: no occurrence with 3+ incident edges.
    auto adj = c.tree.Adjacency();
    bool path = true;
    for (const auto& inc : adj) {
      if (inc.size() > 2) path = false;
    }
    if (path) return static_cast<int>(i);
  }
  return -1;
}

/// A Paper occurrence of network `net` (an internal node).
int FindPaperOccurrence(const xk::cn::Ctssn& c, const xk::schema::TssGraph& tss) {
  xk::schema::TssId paper = *tss.SegmentByName("Paper");
  for (int v = 0; v < c.num_nodes(); ++v) {
    if (c.tree.nodes[static_cast<size_t>(v)] == paper) return v;
  }
  return -1;
}

void BM_Expand(benchmark::State& state, const std::string& decomposition) {
  auto& fixture = xk::bench::DblpBench::Get();
  const int chain_edges = static_cast<int>(state.range(0));
  const auto& prepared = fixture.Prepared(decomposition, /*z=*/8);
  // Canonical seeds: the top-1 result of each network computed once on the
  // minimal decomposition, so every series expands the *same* presentation
  // graph (networks and their indexes are decomposition-independent).
  const auto& seed_prepared = fixture.Prepared("MinClust", /*z=*/8);

  xk::engine::QueryOptions seed_options;
  seed_options.max_size_z = 8;
  seed_options.max_network_size = 6;
  seed_options.per_network_k = 1;
  seed_options.num_threads = 1;

  struct Scenario {
    const PreparedQuery* query;
    int net;
    int paper_occ;
    xk::present::PresentationGraph pg;
  };
  std::vector<Scenario> scenarios;
  for (size_t qi = 0; qi < prepared.size(); ++qi) {
    const PreparedQuery& q = prepared[qi];
    int net = FindChainNetwork(q, fixture.db().tss(), chain_edges);
    if (net < 0) continue;
    xk::engine::TopKExecutor executor;
    auto seeds = executor.Run(seed_prepared[qi], seed_options);
    if (!seeds.ok()) continue;
    xk::present::PresentationGraph pg(&q.ctssns[static_cast<size_t>(net)]);
    for (const xk::present::Mtton& m : *seeds) {
      if (m.ctssn_index == net) pg.AddMtton(m);
    }
    if (pg.NumMttons() == 0) continue;  // that network had no result
    int paper_occ =
        FindPaperOccurrence(q.ctssns[static_cast<size_t>(net)], fixture.db().tss());
    scenarios.push_back(Scenario{&q, net, paper_occ, std::move(pg)});
  }
  if (scenarios.empty()) {
    state.SkipWithError("no query instantiates this network size");
    return;
  }

  auto engine = fixture.xk().MakeExpansionEngine(decomposition);
  XK_CHECK(engine.ok());

  uint64_t expanded = 0;
  uint64_t probes = 0;
  for (auto _ : state) {
    for (Scenario& s : scenarios) {
      xk::engine::ExpansionEngine::Stats stats;
      auto result = engine->ExpandNode(
          s.query->ctssns[static_cast<size_t>(s.net)],
          s.query->node_filters[static_cast<size_t>(s.net)], s.net, s.paper_occ,
          s.pg, &stats);
      benchmark::DoNotOptimize(result);
      expanded += stats.expanded;
      probes += stats.probes.probes;
    }
  }
  state.counters["expanded/op"] = benchmark::Counter(
      static_cast<double>(expanded) /
      static_cast<double>(state.iterations() * scenarios.size()));
  state.counters["probes/op"] = benchmark::Counter(
      static_cast<double>(probes) /
      static_cast<double>(state.iterations() * scenarios.size()));
  state.SetLabel(decomposition + " (" + std::to_string(scenarios.size()) +
                 " queries)");
}

void RegisterAll() {
  for (const char* decomposition : {"Inlined", "MinClust", "combination"}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig16b/") + decomposition).c_str(),
        [decomposition](benchmark::State& state) { BM_Expand(state, decomposition); });
    // CTSSN chain edges 2,3,4 = the paper's CN sizes 2,4,6.
    b->ArgName("chainEdges");
    for (int m : {2, 3, 4}) b->Arg(m);
    b->Unit(benchmark::kMillisecond);
    b->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return xk::bench::RunBenchMain("fig16b", argc, argv);
}
