// Ablation A1 — the space side of Section 5.1's trade-off: fragments, rows
// and bytes of each decomposition, plus build time. The paper's qualitative
// claims to check: the maximal/complete decompositions are dominated by MVD
// fragments whose relations exhibit multivalued blow-up, while the XKeyword
// decomposition buys the same join bound with mostly inlined fragments.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "decomp/classify.h"
#include "decomp/relation_builder.h"

int main() {
  using namespace xk;
  auto& fixture = bench::DblpBench::Get();
  const schema::TssGraph& tss = fixture.db().tss();
  const storage::Catalog& catalog = fixture.xk().catalog();
  bench::BenchJsonWriter writer("decomp_space");

  std::printf("Decomposition space (DBLP, B=2, M=6, L=2):\n");
  std::printf("%-16s %6s %6s %6s %6s %12s %10s\n", "decomposition", "frags",
              "4NF", "inl", "MVD", "rows", "MB");

  for (const char* name :
       {"XKeyword", "Complete", "MinClust", "MinNClustIndx", "MinNClustNIndx",
        "Inlined", "combination"}) {
    auto d = fixture.xk().GetDecomposition(name);
    if (!d.ok()) continue;
    int by_class[3] = {0, 0, 0};
    size_t rows = 0;
    size_t bytes = 0;
    for (const decomp::Fragment& f : (*d)->fragments) {
      ++by_class[static_cast<int>(decomp::Classify(f, tss))];
      auto table = catalog.GetTable(decomp::RelationName(**d, f));
      if (table.ok()) {
        rows += (*table)->NumRows();
        bytes += (*table)->MemoryBytes();
      }
    }
    std::printf("%-16s %6zu %6d %6d %6d %12zu %10.1f\n", name,
                (*d)->fragments.size(), by_class[0], by_class[1], by_class[2],
                rows, static_cast<double>(bytes) / 1e6);
    writer.AddRecord(std::string("DecompSpace/") + name, 0,
                     {{"fragments", static_cast<double>((*d)->fragments.size())},
                      {"rows", static_cast<double>(rows)},
                      {"bytes", static_cast<double>(bytes)}},
                     name);
  }

  // Theorem 5.1 sweep: fragment size bound L vs join bound B for M = 6.
  std::printf("\nTheorem 5.1: L = ceil(M/(B+1)) for M = 6:\n");
  for (int b = 0; b <= 5; ++b) {
    std::printf("  B=%d -> L=%d\n", b, decomp::FragmentSizeBound(6, b));
  }

  // Build-time of the Figure-12 algorithm per (B, M).
  std::printf("\nFigure-12 decomposition build time:\n");
  for (int m : {4, 5, 6}) {
    for (int b : {1, 2, 3}) {
      Stopwatch sw;
      auto d = decomp::MakeXKeyword(tss, b, m);
      if (!d.ok()) continue;
      double ms = sw.ElapsedMillis();
      std::printf("  B=%d M=%d: %7.1f ms, %3zu fragments\n", b, m, ms,
                  d->fragments.size());
      writer.AddRecord(
          "DecompSpace/build/B:" + std::to_string(b) + "/M:" + std::to_string(m),
          ms * 1e6, {{"fragments", static_cast<double>(d->fragments.size())}});
    }
  }
  writer.WriteFile();
  return 0;
}
